package serve

// BenchmarkServe* measures served batch queries over loopback HTTP at the
// two extremes of the cache-hit spectrum: Warm repeats one fault set
// (after the first request every lookup hits, so requests skip fault
// preparation), Cold changes the fault set every request (every lookup
// misses and pays decoder Steps 1–3). The gap is the amortization the
// prepared-context LRU buys; the bench-compare CI gate watches these.

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"

	"ftrouting"
	"ftrouting/internal/obs"
	"ftrouting/serve/api"
)

// benchPairsPerRequest keeps requests small enough that fault-set
// preparation dominates the cold path, the serving regime the cache
// exists for.
const benchPairsPerRequest = 16

var benchSchemes struct {
	once sync.Once
	conn *ftrouting.ConnLabels
	dist *ftrouting.DistLabels
	g    *ftrouting.Graph
	dg   *ftrouting.Graph
	err  error
}

func benchSetup() error {
	benchSchemes.once.Do(func() {
		benchSchemes.g = ftrouting.RandomConnected(256, 420, 1)
		benchSchemes.conn, benchSchemes.err = ftrouting.BuildConnectivityLabels(
			benchSchemes.g, ftrouting.ConnOptions{Seed: 1})
		if benchSchemes.err != nil {
			return
		}
		benchSchemes.dg = ftrouting.WithRandomWeights(ftrouting.RandomConnected(48, 80, 2), 4, 3)
		benchSchemes.dist, benchSchemes.err = ftrouting.BuildDistanceLabels(benchSchemes.dg, 2, 2, 1)
	})
	return benchSchemes.err
}

// benchServe posts b.N requests to one endpoint, drawing the request's
// fault set from faultsFor(i), and reports query throughput.
func benchServe(b *testing.B, scheme any, endpoint string, g *ftrouting.Graph, faultsFor func(i int) []ftrouting.EdgeID) {
	benchServeOpts(b, scheme, endpoint, g, Options{}, faultsFor)
}

// benchServeOpts is benchServe with explicit server options, so the
// instrumented variants measure the same workload.
func benchServeOpts(b *testing.B, scheme any, endpoint string, g *ftrouting.Graph, opts Options, faultsFor func(i int) []ftrouting.EdgeID) {
	s, err := New(scheme, opts)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := ts.Client()

	pairs := make([][2]int32, benchPairsPerRequest)
	n := g.N()
	for i := range pairs {
		pairs[i] = [2]int32{int32((i * 5) % n), int32((i*11 + n/2) % n)}
	}
	url := ts.URL + "/v1/" + endpoint

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, err := json.Marshal(QueryRequest{Pairs: pairs, Faults: faultsFor(i)})
		if err != nil {
			b.Fatal(err)
		}
		resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			body := new(bytes.Buffer)
			body.ReadFrom(resp.Body)
			resp.Body.Close()
			b.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		resp.Body.Close()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*benchPairsPerRequest)/b.Elapsed().Seconds(), "queries/s")
	if st := s.Stats().Cache; b.N > 1 && st.Hits+st.Misses != uint64(b.N) {
		b.Fatalf("cache lookups %d != %d requests", st.Hits+st.Misses, b.N)
	}
}

func BenchmarkServeConnectedWarm(b *testing.B) {
	if err := benchSetup(); err != nil {
		b.Fatal(err)
	}
	faults := ftrouting.RandomFaults(benchSchemes.g, 6, 5)
	benchServe(b, benchSchemes.conn, "connected", benchSchemes.g,
		func(int) []ftrouting.EdgeID { return faults })
}

// BenchmarkServeConnectedInstrumented is the warm workload with the full
// observability layer live (metrics registry + discarded structured
// log); E19 compares it against the uninstrumented warm number.
func BenchmarkServeConnectedInstrumented(b *testing.B) {
	if err := benchSetup(); err != nil {
		b.Fatal(err)
	}
	faults := ftrouting.RandomFaults(benchSchemes.g, 6, 5)
	opts := Options{Obs: Observability{
		Metrics:   obs.NewRegistry(),
		AccessLog: slog.New(slog.NewJSONHandler(io.Discard, nil)),
	}}
	benchServeOpts(b, benchSchemes.conn, "connected", benchSchemes.g, opts,
		func(int) []ftrouting.EdgeID { return faults })
}

func BenchmarkServeConnectedCold(b *testing.B) {
	if err := benchSetup(); err != nil {
		b.Fatal(err)
	}
	benchServe(b, benchSchemes.conn, "connected", benchSchemes.g,
		func(i int) []ftrouting.EdgeID {
			return ftrouting.RandomFaults(benchSchemes.g, 6, uint64(1000+i))
		})
}

func BenchmarkServeEstimateWarm(b *testing.B) {
	if err := benchSetup(); err != nil {
		b.Fatal(err)
	}
	faults := ftrouting.RandomFaults(benchSchemes.dg, 2, 5)
	benchServe(b, benchSchemes.dist, "estimate", benchSchemes.dg,
		func(int) []ftrouting.EdgeID { return faults })
}

func BenchmarkServeEstimateCold(b *testing.B) {
	if err := benchSetup(); err != nil {
		b.Fatal(err)
	}
	benchServe(b, benchSchemes.dist, "estimate", benchSchemes.dg,
		func(i int) []ftrouting.EdgeID {
			return ftrouting.RandomFaults(benchSchemes.dg, 2, uint64(1000+i))
		})
}

// BenchmarkServeStats measures the monitoring endpoint (lock-free counter
// snapshot + small JSON body), decoding each body so a malformed stats
// response fails the benchmark instead of inflating its throughput.
func BenchmarkServeStats(b *testing.B) {
	if err := benchSetup(); err != nil {
		b.Fatal(err)
	}
	s, err := New(benchSchemes.conn, Options{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := ts.Client()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get(ts.URL + "/v1/stats")
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		var stats api.StatsResponse
		err = json.NewDecoder(resp.Body).Decode(&stats)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		if stats.Kind != "conn" || stats.Endpoints["stats"].Requests != uint64(i+1) {
			b.Fatalf("stats body off: kind %q, stats requests %d at i=%d",
				stats.Kind, stats.Endpoints["stats"].Requests, i)
		}
	}
}

// Sharded-server benchmarks (bench-compare gate: the Serve filter
// matches these too). Warm measures the shard router's split/merge
// overhead once shards and contexts are resident — the E18 claim that
// warm sharded throughput stays within 10% of monolithic. ColdShards
// adds the full residency churn: a one-byte budget evicts every shard
// between requests, so each request pays shard decode + label rebuild.
var benchSharded struct {
	once sync.Once
	m    *ftrouting.Manifest
	err  error
}

func benchShardedSetup() error {
	if err := benchSetup(); err != nil {
		return err
	}
	benchSharded.once.Do(func() {
		g := ftrouting.Islands(6, 64, 100, 1)
		conn, err := ftrouting.BuildConnectivityLabels(g, ftrouting.ConnOptions{Seed: 1})
		if err != nil {
			benchSharded.err = err
			return
		}
		dir, err := os.MkdirTemp("", "benchshards")
		if err != nil {
			benchSharded.err = err
			return
		}
		benchSharded.m, benchSharded.err = ftrouting.SaveShardedConn(dir, conn, ftrouting.ShardOptions{})
	})
	return benchSharded.err
}

// benchServeSharded posts b.N island-spanning requests to a sharded
// server with the given shard budget.
func benchServeSharded(b *testing.B, budget int64, faultsFor func(i int) []ftrouting.EdgeID) {
	if err := benchShardedSetup(); err != nil {
		b.Fatal(err)
	}
	m := benchSharded.m
	s, err := NewSharded(m, Options{ShardBudgetBytes: budget})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := ts.Client()
	g := m.Graph()
	islandN := g.N() / m.NumComponents()
	pairs := make([][2]int32, benchPairsPerRequest)
	for i := range pairs {
		island := int32(i % m.NumComponents())
		pairs[i] = [2]int32{
			island*int32(islandN) + int32((i*5)%islandN),
			island*int32(islandN) + int32((i*11+islandN/2)%islandN),
		}
	}
	url := ts.URL + "/v1/connected"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, err := json.Marshal(QueryRequest{Pairs: pairs, Faults: faultsFor(i)})
		if err != nil {
			b.Fatal(err)
		}
		resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			body := new(bytes.Buffer)
			body.ReadFrom(resp.Body)
			resp.Body.Close()
			b.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		resp.Body.Close()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*benchPairsPerRequest)/b.Elapsed().Seconds(), "queries/s")
}

func BenchmarkServeShardedConnectedWarm(b *testing.B) {
	if err := benchShardedSetup(); err != nil {
		b.Fatal(err)
	}
	faults := ftrouting.RandomFaults(benchSharded.m.Graph(), 6, 5)
	benchServeSharded(b, DefaultShardBudgetBytes, func(int) []ftrouting.EdgeID { return faults })
}

func BenchmarkServeShardedConnectedColdShards(b *testing.B) {
	if err := benchShardedSetup(); err != nil {
		b.Fatal(err)
	}
	faults := ftrouting.RandomFaults(benchSharded.m.Graph(), 6, 5)
	benchServeSharded(b, 1, func(int) []ftrouting.EdgeID { return faults })
}
