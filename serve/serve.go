// Package serve is the long-running query daemon over persisted schemes:
// it loads any scheme file written by ftroute build (connectivity,
// distance or routing), and answers pair batches over an HTTP/JSON API
// that dispatches to the root package's batch engine. This is the
// deployment shape the paper's preprocessing/query split is designed for
// — all graph-dependent work happened at build time, so the serving tier
// is pure label decoding: load once, serve heavy traffic.
//
// Endpoints (all under /v1, POST bodies are QueryRequest JSON):
//
//	POST /v1/connected        connectivity per pair (conn schemes)
//	POST /v1/estimate         distance estimate per pair (dist schemes)
//	POST /v1/route            unknown-fault routing per pair (router schemes)
//	POST /v1/route-forbidden  known-fault routing per pair (router schemes)
//	GET  /v1/healthz          scheme kind, sizes, fault bound
//	GET  /v1/stats            per-endpoint counters and cache statistics
//
// Responses are bit-identical to direct ConnectedBatch / EstimateBatch /
// RouteBatch / RouteForbiddenBatch calls. A bounded LRU keyed by the
// canonicalized fault set keeps prepared fault contexts warm, so repeated
// queries against the same failures skip fault-set preparation (decoder
// Steps 1–3) entirely. Errors carry the batch API's machine-readable
// codes and pair indices in a structured JSON envelope.
package serve

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"

	"ftrouting"
	"ftrouting/internal/blob"
)

// Default limits; zero-valued Options fields select these.
const (
	// DefaultContextCacheSize bounds the prepared fault contexts kept warm.
	DefaultContextCacheSize = 64
	// DefaultMaxRequestBytes bounds a request body (8 MiB ≈ one million
	// pairs per request).
	DefaultMaxRequestBytes = 8 << 20
	// DefaultShardBudgetBytes bounds the resident shards of a sharded
	// server (measured as shard file bytes, the manifest's recorded cost).
	DefaultShardBudgetBytes = 1 << 30
)

// Options configures a Server.
type Options struct {
	// Parallelism bounds the worker goroutines evaluating each request's
	// pairs: 0 uses GOMAXPROCS, 1 evaluates sequentially (the root batch
	// API's convention).
	Parallelism int
	// ContextCacheSize bounds the prepared-fault-context LRU: 0 selects
	// DefaultContextCacheSize, negative disables caching. A sharded server
	// applies the bound per resident shard (contexts die with their
	// shard).
	ContextCacheSize int
	// MaxRequestBytes bounds a request body: 0 selects
	// DefaultMaxRequestBytes.
	MaxRequestBytes int64
	// ShardBudgetBytes bounds the resident shard bytes of a sharded
	// server: 0 selects DefaultShardBudgetBytes, negative disables
	// eviction. Shards pinned by in-flight requests are never evicted, so
	// a single batch touching more than the budget transiently exceeds
	// it. Ignored by monolithic servers.
	ShardBudgetBytes int64
	// ShardStore overrides where a sharded server fetches shards on
	// resident-cache miss: nil uses the manifest's own store (the
	// directory it was loaded from, or the remote backend a URL source
	// resolved to). Every fetched shard is verified against the
	// manifest's recorded checksum and scheme digest before install,
	// whatever the store; transport-level fetch failures answer as typed
	// upstream_failure envelopes (HTTP 502). Ignored by monolithic
	// servers.
	ShardStore blob.Store
	// Obs configures metrics, request tracing and access logging; the
	// zero value disables the whole layer and keeps the server
	// byte-for-byte on its uninstrumented behavior.
	Obs Observability
}

// endpointCounters counts one endpoint's traffic (lock-free; read by
// /v1/stats while requests are in flight).
type endpointCounters struct {
	requests atomic.Uint64
	errors   atomic.Uint64
}

// Server answers batch queries for one loaded scheme — either a whole
// scheme held in memory (New) or a shard manifest whose shards load and
// evict lazily under a memory budget (NewSharded). It implements
// http.Handler and is safe for concurrent requests. Both modes answer
// any batch bit-identically: the sharded router splits each batch by
// component id, evaluates per shard and merges in input order.
type Server struct {
	kind   string // "conn", "dist" or "router"
	conn   *ftrouting.ConnLabels
	dist   *ftrouting.DistLabels
	router *ftrouting.Router
	g      *ftrouting.Graph
	bound  int
	digest uint32

	// Sharded mode: manifest plus the two-level cache (shard -> fault
	// context); nil for monolithic servers.
	manifest *ftrouting.Manifest
	shards   *shardCache

	opts        Options
	cache       *contextCache
	obs         *tierObs
	mux         *http.ServeMux
	counters    map[string]*endpointCounters
	pairsServed atomic.Uint64
}

// endpoint name -> scheme kind that answers it.
var queryEndpoints = map[string]string{
	"connected":       "conn",
	"estimate":        "dist",
	"route":           "router",
	"route-forbidden": "router",
}

// normalizeOptions applies the zero-value defaults.
func normalizeOptions(opts Options) (Options, error) {
	if opts.ContextCacheSize == 0 {
		opts.ContextCacheSize = DefaultContextCacheSize
	}
	if opts.MaxRequestBytes == 0 {
		opts.MaxRequestBytes = DefaultMaxRequestBytes
	}
	if opts.MaxRequestBytes < 0 {
		return opts, fmt.Errorf("serve: MaxRequestBytes must be positive, got %d", opts.MaxRequestBytes)
	}
	if opts.ShardBudgetBytes == 0 {
		opts.ShardBudgetBytes = DefaultShardBudgetBytes
	}
	return opts, nil
}

// New wraps a loaded scheme — the *ftrouting.ConnLabels, *DistLabels or
// *Router a LoadScheme call returned — in a Server.
func New(scheme any, opts Options) (*Server, error) {
	opts, err := normalizeOptions(opts)
	if err != nil {
		return nil, err
	}
	s := &Server{opts: opts, cache: newContextCache(opts.ContextCacheSize), obs: newTierObs(opts.Obs)}
	s.obs.cacheInstruments()
	switch v := scheme.(type) {
	case *ftrouting.ConnLabels:
		s.kind, s.conn, s.g, s.bound = "conn", v, v.Graph(), v.FaultBound()
	case *ftrouting.DistLabels:
		s.kind, s.dist, s.g, s.bound = "dist", v, v.Graph(), v.FaultBound()
	case *ftrouting.Router:
		s.kind, s.router, s.g, s.bound = "router", v, v.Graph(), v.FaultBound()
	default:
		return nil, fmt.Errorf("serve: unsupported scheme type %T", scheme)
	}
	if s.digest, err = ftrouting.SchemeDigest(scheme); err != nil {
		return nil, err
	}
	s.initMux()
	return s, nil
}

// NewSharded wraps a loaded shard manifest in a Server: the shard-aware
// router mode of `ftroute serve` over a manifest. Shards load lazily on first
// touch and evict least-recently-used under Options.ShardBudgetBytes;
// each resident shard keeps its own prepared-fault-context LRU. Every
// batch is answered bit-identically to a monolithic server over the same
// scheme — including error envelopes and cross-component pairs, which
// are answered from the manifest directory without loading any shard.
func NewSharded(m *ftrouting.Manifest, opts Options) (*Server, error) {
	opts, err := normalizeOptions(opts)
	if err != nil {
		return nil, err
	}
	s := &Server{
		opts:     opts,
		kind:     m.Kind(),
		g:        m.Graph(),
		bound:    m.FaultBound(),
		digest:   m.Digest(),
		manifest: m,
		shards:   newShardCache(m, opts.ShardStore, opts.ShardBudgetBytes, opts.ContextCacheSize),
		obs:      newTierObs(opts.Obs),
	}
	s.obs.cacheInstruments()
	s.shards.loadTime, s.shards.residentGauge, s.shards.evictedCtr = s.obs.shardInstruments()
	s.shards.fetchTime, s.shards.retryCtr, s.shards.failCtr = s.obs.fetchInstruments()
	if o, ok := s.shards.store.(blob.Observable); ok {
		o.SetObserver(s.shards.observeFetch)
	}
	s.initMux()
	return s, nil
}

// initMux installs the /v1 endpoint handlers and their counters, plus
// the /metrics scrape target when metrics are enabled.
func (s *Server) initMux() {
	s.counters = make(map[string]*endpointCounters)
	s.mux = http.NewServeMux()
	for name := range queryEndpoints {
		name := name
		s.counters[name] = &endpointCounters{}
		s.mux.HandleFunc("/v1/"+name, instrumented(s.obs, s.counters, name,
			func(w http.ResponseWriter, r *http.Request, ro *reqObs) *apiError {
				return s.answerQuery(w, r, name, ro)
			}))
	}
	for name, h := range map[string]func(http.ResponseWriter, *http.Request, *reqObs) *apiError{
		"healthz": s.handleHealthz,
		"stats":   s.handleStats,
	} {
		name, h := name, h
		s.counters[name] = &endpointCounters{}
		s.mux.HandleFunc("/v1/"+name, instrumented(s.obs, s.counters, name, h))
	}
	if h := s.obs.metricsHandler(); h != nil {
		s.mux.Handle("/metrics", h)
	}
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, errorf(http.StatusNotFound, codeNotFound, "no such endpoint %s", r.URL.Path))
	})
}

// Kind returns the loaded scheme kind: "conn", "dist" or "router".
func (s *Server) Kind() string { return s.kind }

// ServeHTTP dispatches to the /v1 endpoint handlers.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Stats snapshots the serving counters (the /v1/stats payload). For a
// sharded server the cache block aggregates every shard's prepared-fault-
// context counters and the shards block breaks residency, loads,
// evictions and context traffic out per shard.
func (s *Server) Stats() StatsResponse {
	resp := StatsResponse{
		Kind:        s.kind,
		Endpoints:   make(map[string]EndpointStats, len(s.counters)),
		PairsServed: s.pairsServed.Load(),
	}
	if s.shards != nil {
		resp.Cache = s.shards.aggregateContextStats()
		sh := s.shards.stats()
		resp.Shards = &sh
	} else {
		resp.Cache = s.cache.stats()
	}
	for name, c := range s.counters {
		resp.Endpoints[name] = EndpointStats{Requests: c.requests.Load(), Errors: c.errors.Load()}
	}
	resp.Latency = s.obs.latencySummaries()
	resp.Stages = s.obs.stageSummaries()
	return resp
}

// answerQuery is the shared query-endpoint pipeline: decode, look up (or
// prepare) the fault context, fan the pairs out, respond.
func (s *Server) answerQuery(w http.ResponseWriter, r *http.Request, name string, ro *reqObs) *apiError {
	if r.Method != http.MethodPost {
		return errorf(http.StatusMethodNotAllowed, codeMethodNotAllowed,
			"/v1/%s accepts POST, not %s", name, r.Method)
	}
	if want := queryEndpoints[name]; want != s.kind {
		return errorf(http.StatusNotFound, codeUnsupported,
			"/v1/%s serves %s schemes; this server holds a %s scheme", name, want, s.kind)
	}
	st := ro.now()
	req, e := decodeQueryRequest(r.Body, s.opts.MaxRequestBytes)
	if e != nil {
		return e
	}
	ro.stage(stageDecode, st)
	batch := req.Batch()
	ro.setBatch(len(batch.Pairs), len(batch.Faults))
	// Mirror the batch API: an empty pair list returns empty results
	// without touching (or even validating) the fault set.
	if len(batch.Pairs) == 0 {
		writeJSON(w, attachTiming(emptyPayload(name), ro.timing()))
		return nil
	}
	var payload any
	if s.manifest != nil {
		payload, e = s.evalSharded(name, batch, ro)
	} else {
		payload, e = s.evalMonolithic(name, batch, ro)
	}
	if e != nil {
		return e
	}
	s.pairsServed.Add(uint64(len(batch.Pairs)))
	writeJSON(w, attachTiming(payload, ro.timing()))
	return nil
}

// prepare builds the fault context of the loaded scheme kind; the cache
// calls it once per distinct fault set.
func (s *Server) prepare(canon []ftrouting.EdgeID) (any, error) {
	switch s.kind {
	case "conn":
		return s.conn.PrepareFaults(canon)
	case "dist":
		return s.dist.PrepareFaults(canon)
	default:
		return s.router.PrepareFaults(canon)
	}
}

// evalMonolithic answers one batch from the whole in-memory scheme: one
// cached fault context, one fan-out.
func (s *Server) evalMonolithic(name string, batch ftrouting.QueryBatch, ro *reqObs) (any, *apiError) {
	canon := ftrouting.CanonicalFaults(batch.Faults)
	st := ro.now()
	ctx, hit, err := s.cache.get(faultKey(canon), func() (any, error) { return s.prepare(canon) })
	if err != nil {
		return nil, fromBatchError(err)
	}
	ro.cacheResult(hit)
	ro.stage(stageContext, st)
	opts := ftrouting.BatchOptions{Parallelism: s.opts.Parallelism}
	pairs := batch.Pairs
	st = ro.now()
	var payload any
	switch name {
	case "connected":
		results, err := ctx.(*ftrouting.ConnFaultContext).ConnectedBatch(pairs, opts)
		if err != nil {
			return nil, fromBatchError(err)
		}
		payload = ConnectedResponse{Results: results}
	case "estimate":
		estimates, err := ctx.(*ftrouting.DistFaultContext).EstimateBatch(pairs, opts)
		if err != nil {
			return nil, fromBatchError(err)
		}
		payload = EstimateResponse{Estimates: estimates}
	default: // route, route-forbidden
		rc := ctx.(*ftrouting.RouteFaultContext)
		var results []ftrouting.RouteResult
		if name == "route-forbidden" {
			// Surface a forbidden-preparation error once, unscoped, before
			// any pair runs — Router.RouteForbiddenBatch's semantics.
			if err := rc.PrepareForbidden(); err != nil {
				return nil, fromBatchError(err)
			}
			results, err = rc.RouteForbiddenBatch(pairs, opts)
		} else {
			results, err = rc.RouteBatch(pairs, opts)
		}
		if err != nil {
			return nil, fromBatchError(err)
		}
		payload = routePayload(results)
	}
	ro.stage(stageEval, st)
	return payload, nil
}

// evalSharded answers one batch through the shard router: plan the split
// by component id, pin (loading if needed) every shard the plan touches,
// look up or prepare each shard's fault context, and run the merged
// fan-out. Answers — including error envelopes and cross-component
// pairs — are bit-identical to evalMonolithic over the same scheme.
func (s *Server) evalSharded(name string, batch ftrouting.QueryBatch, ro *reqObs) (any, *apiError) {
	// Plan over the canonical fault set: the monolithic path validates and
	// prepares the canonical form too, so error choice and messages agree.
	canon := ftrouting.CanonicalFaults(batch.Faults)
	st := ro.now()
	plan, err := s.manifest.PlanBatch(ftrouting.QueryBatch{Pairs: batch.Pairs, Faults: canon})
	if err != nil {
		return nil, fromBatchError(err)
	}
	ro.stage(stageValidate, st)
	ids := plan.ShardIDs()
	ctxs := make(map[int]any, len(ids))
	st = ro.now()
	held, err := s.shards.acquireAll(ids)
	if err != nil {
		// A transport-level fetch failure is the shard backend being
		// unreachable, not this replica being broken: answer with the
		// same typed upstream_failure envelope the proxy uses when its
		// replicas are down. Anything else — a corrupt or foreign blob,
		// a missing file — is a server-side fault.
		if errors.Is(err, blob.ErrFetch) {
			return nil, errorf(http.StatusBadGateway, codeUpstream, "%v", err)
		}
		return nil, errorf(http.StatusInternalServerError, codeInternal, "%v", err)
	}
	defer s.shards.releaseAll(held)
	for _, entry := range held {
		entry := entry
		// The context key is the shard-restricted canonical fault set plus
		// the global distinct count (distance estimates scale with the
		// whole batch's |F|, which the restriction alone cannot see).
		key := faultKey(plan.ShardFaults(entry.id)) + "#" + strconv.Itoa(plan.DistinctFaults())
		ctx, hit, err := entry.contexts.get(key, func() (any, error) { return plan.PrepareShard(entry.shard) })
		if err != nil {
			return nil, fromBatchError(err)
		}
		ro.cacheResult(hit)
		ctxs[entry.id] = ctx
	}
	ro.stage(stageContext, st)
	opts := ftrouting.BatchOptions{Parallelism: s.opts.Parallelism}
	st = ro.now()
	var payload any
	switch name {
	case "connected":
		results, err := plan.ConnectedBatch(ctxs, opts)
		if err != nil {
			return nil, fromBatchError(err)
		}
		payload = ConnectedResponse{Results: results}
	case "estimate":
		estimates, err := plan.EstimateBatch(ctxs, opts)
		if err != nil {
			return nil, fromBatchError(err)
		}
		payload = EstimateResponse{Estimates: estimates}
	default:
		var results []ftrouting.RouteResult
		if name == "route-forbidden" {
			results, err = plan.RouteForbiddenBatch(ctxs, opts)
		} else {
			results, err = plan.RouteBatch(ctxs, opts)
		}
		if err != nil {
			return nil, fromBatchError(err)
		}
		payload = routePayload(results)
	}
	ro.stage(stageEval, st)
	return payload, nil
}

// emptyPayload is the zero-pair response of one endpoint.
func emptyPayload(name string) any {
	switch name {
	case "connected":
		return ConnectedResponse{Results: []bool{}}
	case "estimate":
		return EstimateResponse{Estimates: []int64{}}
	default:
		return RouteResponse{Results: []RouteResult{}}
	}
}

// routePayload converts simulation results to their wire form.
func routePayload(results []ftrouting.RouteResult) RouteResponse {
	wire := make([]RouteResult, len(results))
	for i, res := range results {
		wire[i] = fromRouteResult(res)
	}
	return RouteResponse{Results: wire}
}

// handleHealthz answers GET /v1/healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request, _ *reqObs) *apiError {
	if r.Method != http.MethodGet {
		return errorf(http.StatusMethodNotAllowed, codeMethodNotAllowed,
			"/v1/healthz accepts GET, not %s", r.Method)
	}
	resp := HealthResponse{
		Status:      "ok",
		Kind:        s.kind,
		Vertices:    s.g.N(),
		Edges:       s.g.M(),
		FaultBound:  s.bound,
		Unreachable: ftrouting.Unreachable,
		Digest:      fmt.Sprintf("%08x", s.digest),
	}
	if s.manifest != nil {
		resp.Components = s.manifest.NumComponents()
		resp.Shards = s.manifest.NumShards()
	}
	writeJSON(w, resp)
	return nil
}

// handleStats answers GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request, _ *reqObs) *apiError {
	if r.Method != http.MethodGet {
		return errorf(http.StatusMethodNotAllowed, codeMethodNotAllowed,
			"/v1/stats accepts GET, not %s", r.Method)
	}
	writeJSON(w, s.Stats())
	return nil
}
