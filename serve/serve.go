// Package serve is the long-running query daemon over persisted schemes:
// it loads any scheme file written by ftroute build (connectivity,
// distance or routing), and answers pair batches over an HTTP/JSON API
// that dispatches to the root package's batch engine. This is the
// deployment shape the paper's preprocessing/query split is designed for
// — all graph-dependent work happened at build time, so the serving tier
// is pure label decoding: load once, serve heavy traffic.
//
// Endpoints (all under /v1, POST bodies are QueryRequest JSON):
//
//	POST /v1/connected        connectivity per pair (conn schemes)
//	POST /v1/estimate         distance estimate per pair (dist schemes)
//	POST /v1/route            unknown-fault routing per pair (router schemes)
//	POST /v1/route-forbidden  known-fault routing per pair (router schemes)
//	GET  /v1/healthz          scheme kind, sizes, fault bound
//	GET  /v1/stats            per-endpoint counters and cache statistics
//
// Responses are bit-identical to direct ConnectedBatch / EstimateBatch /
// RouteBatch / RouteForbiddenBatch calls. A bounded LRU keyed by the
// canonicalized fault set keeps prepared fault contexts warm, so repeated
// queries against the same failures skip fault-set preparation (decoder
// Steps 1–3) entirely. Errors carry the batch API's machine-readable
// codes and pair indices in a structured JSON envelope.
package serve

import (
	"fmt"
	"net/http"
	"sync/atomic"

	"ftrouting"
)

// Default limits; zero-valued Options fields select these.
const (
	// DefaultContextCacheSize bounds the prepared fault contexts kept warm.
	DefaultContextCacheSize = 64
	// DefaultMaxRequestBytes bounds a request body (8 MiB ≈ one million
	// pairs per request).
	DefaultMaxRequestBytes = 8 << 20
)

// Options configures a Server.
type Options struct {
	// Parallelism bounds the worker goroutines evaluating each request's
	// pairs: 0 uses GOMAXPROCS, 1 evaluates sequentially (the root batch
	// API's convention).
	Parallelism int
	// ContextCacheSize bounds the prepared-fault-context LRU: 0 selects
	// DefaultContextCacheSize, negative disables caching.
	ContextCacheSize int
	// MaxRequestBytes bounds a request body: 0 selects
	// DefaultMaxRequestBytes.
	MaxRequestBytes int64
}

// endpointCounters counts one endpoint's traffic (lock-free; read by
// /v1/stats while requests are in flight).
type endpointCounters struct {
	requests atomic.Uint64
	errors   atomic.Uint64
}

// Server answers batch queries for one loaded scheme. It implements
// http.Handler and is safe for concurrent requests.
type Server struct {
	kind   string // "conn", "dist" or "router"
	conn   *ftrouting.ConnLabels
	dist   *ftrouting.DistLabels
	router *ftrouting.Router
	g      *ftrouting.Graph
	bound  int

	opts        Options
	cache       *contextCache
	mux         *http.ServeMux
	counters    map[string]*endpointCounters
	pairsServed atomic.Uint64
}

// endpoint name -> scheme kind that answers it.
var queryEndpoints = map[string]string{
	"connected":       "conn",
	"estimate":        "dist",
	"route":           "router",
	"route-forbidden": "router",
}

// New wraps a loaded scheme — the *ftrouting.ConnLabels, *DistLabels or
// *Router a LoadScheme call returned — in a Server.
func New(scheme any, opts Options) (*Server, error) {
	if opts.ContextCacheSize == 0 {
		opts.ContextCacheSize = DefaultContextCacheSize
	}
	if opts.MaxRequestBytes == 0 {
		opts.MaxRequestBytes = DefaultMaxRequestBytes
	}
	if opts.MaxRequestBytes < 0 {
		return nil, fmt.Errorf("serve: MaxRequestBytes must be positive, got %d", opts.MaxRequestBytes)
	}
	s := &Server{opts: opts, cache: newContextCache(opts.ContextCacheSize)}
	switch v := scheme.(type) {
	case *ftrouting.ConnLabels:
		s.kind, s.conn, s.g, s.bound = "conn", v, v.Graph(), v.FaultBound()
	case *ftrouting.DistLabels:
		s.kind, s.dist, s.g, s.bound = "dist", v, v.Graph(), v.FaultBound()
	case *ftrouting.Router:
		s.kind, s.router, s.g, s.bound = "router", v, v.Graph(), v.FaultBound()
	default:
		return nil, fmt.Errorf("serve: unsupported scheme type %T", scheme)
	}
	s.counters = make(map[string]*endpointCounters)
	s.mux = http.NewServeMux()
	for name := range queryEndpoints {
		name := name
		s.counters[name] = &endpointCounters{}
		s.mux.HandleFunc("/v1/"+name, func(w http.ResponseWriter, r *http.Request) {
			s.handleQuery(w, r, name)
		})
	}
	for name, h := range map[string]func(http.ResponseWriter, *http.Request) error{
		"healthz": s.handleHealthz,
		"stats":   s.handleStats,
	} {
		name, h := name, h
		s.counters[name] = &endpointCounters{}
		s.mux.HandleFunc("/v1/"+name, func(w http.ResponseWriter, r *http.Request) {
			s.counted(w, r, name, h)
		})
	}
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, errorf(http.StatusNotFound, codeNotFound, "no such endpoint %s", r.URL.Path))
	})
	return s, nil
}

// Kind returns the loaded scheme kind: "conn", "dist" or "router".
func (s *Server) Kind() string { return s.kind }

// ServeHTTP dispatches to the /v1 endpoint handlers.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Stats snapshots the serving counters (the /v1/stats payload).
func (s *Server) Stats() StatsResponse {
	resp := StatsResponse{
		Kind:        s.kind,
		Endpoints:   make(map[string]EndpointStats, len(s.counters)),
		PairsServed: s.pairsServed.Load(),
		Cache:       s.cache.stats(),
	}
	for name, c := range s.counters {
		resp.Endpoints[name] = EndpointStats{Requests: c.requests.Load(), Errors: c.errors.Load()}
	}
	return resp
}

// counted runs a handler under the endpoint's request/error counters.
func (s *Server) counted(w http.ResponseWriter, r *http.Request, name string, h func(http.ResponseWriter, *http.Request) error) {
	c := s.counters[name]
	c.requests.Add(1)
	if err := h(w, r); err != nil {
		c.errors.Add(1)
	}
}

// handleQuery is the shared query-endpoint pipeline: decode, look up (or
// prepare) the fault context, fan the pairs out, respond.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, name string) {
	s.counted(w, r, name, func(w http.ResponseWriter, r *http.Request) error {
		if e := s.answerQuery(w, r, name); e != nil {
			writeError(w, e)
			return e
		}
		return nil
	})
}

func (s *Server) answerQuery(w http.ResponseWriter, r *http.Request, name string) *apiError {
	if r.Method != http.MethodPost {
		return errorf(http.StatusMethodNotAllowed, codeMethodNotAllowed,
			"/v1/%s accepts POST, not %s", name, r.Method)
	}
	if want := queryEndpoints[name]; want != s.kind {
		return errorf(http.StatusNotFound, codeUnsupported,
			"/v1/%s serves %s schemes; this server holds a %s scheme", name, want, s.kind)
	}
	req, e := decodeQueryRequest(r.Body, s.opts.MaxRequestBytes)
	if e != nil {
		return e
	}
	batch := req.batch()
	// Mirror the batch API: an empty pair list returns empty results
	// without touching (or even validating) the fault set.
	if len(batch.Pairs) == 0 {
		return s.respond(w, name, nil, nil)
	}
	ctx, err := s.cache.get(ftrouting.CanonicalFaults(batch.Faults), s.prepare)
	if err != nil {
		return fromBatchError(err)
	}
	return s.respond(w, name, batch.Pairs, ctx)
}

// prepare builds the fault context of the loaded scheme kind; the cache
// calls it once per distinct fault set.
func (s *Server) prepare(canon []ftrouting.EdgeID) (any, error) {
	switch s.kind {
	case "conn":
		return s.conn.PrepareFaults(canon)
	case "dist":
		return s.dist.PrepareFaults(canon)
	default:
		return s.router.PrepareFaults(canon)
	}
}

// respond evaluates the pairs on the prepared context and writes the
// endpoint's response type. A nil pair list writes the empty response.
func (s *Server) respond(w http.ResponseWriter, name string, pairs []ftrouting.Pair, ctx any) *apiError {
	opts := ftrouting.BatchOptions{Parallelism: s.opts.Parallelism}
	var payload any
	switch name {
	case "connected":
		results := []bool{}
		if len(pairs) > 0 {
			var err error
			results, err = ctx.(*ftrouting.ConnFaultContext).ConnectedBatch(pairs, opts)
			if err != nil {
				return fromBatchError(err)
			}
		}
		payload = ConnectedResponse{Results: results}
	case "estimate":
		estimates := []int64{}
		if len(pairs) > 0 {
			var err error
			estimates, err = ctx.(*ftrouting.DistFaultContext).EstimateBatch(pairs, opts)
			if err != nil {
				return fromBatchError(err)
			}
		}
		payload = EstimateResponse{Estimates: estimates}
	default: // route, route-forbidden
		results := []ftrouting.RouteResult{}
		if len(pairs) > 0 {
			rc := ctx.(*ftrouting.RouteFaultContext)
			var err error
			if name == "route-forbidden" {
				// Surface a forbidden-preparation error once, unscoped,
				// before any pair runs — Router.RouteForbiddenBatch's
				// semantics.
				if err := rc.PrepareForbidden(); err != nil {
					return fromBatchError(err)
				}
				results, err = rc.RouteForbiddenBatch(pairs, opts)
			} else {
				results, err = rc.RouteBatch(pairs, opts)
			}
			if err != nil {
				return fromBatchError(err)
			}
		}
		wire := make([]RouteResult, len(results))
		for i, res := range results {
			wire[i] = fromRouteResult(res)
		}
		payload = RouteResponse{Results: wire}
	}
	s.pairsServed.Add(uint64(len(pairs)))
	writeJSON(w, payload)
	return nil
}

// handleHealthz answers GET /v1/healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) error {
	if r.Method != http.MethodGet {
		e := errorf(http.StatusMethodNotAllowed, codeMethodNotAllowed,
			"/v1/healthz accepts GET, not %s", r.Method)
		writeError(w, e)
		return e
	}
	writeJSON(w, HealthResponse{
		Status:      "ok",
		Kind:        s.kind,
		Vertices:    s.g.N(),
		Edges:       s.g.M(),
		FaultBound:  s.bound,
		Unreachable: ftrouting.Unreachable,
	})
	return nil
}

// handleStats answers GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) error {
	if r.Method != http.MethodGet {
		e := errorf(http.StatusMethodNotAllowed, codeMethodNotAllowed,
			"/v1/stats accepts GET, not %s", r.Method)
		writeError(w, e)
		return e
	}
	writeJSON(w, s.Stats())
	return nil
}
