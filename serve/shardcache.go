package serve

// The resident-shard cache of a sharded server: level one of the
// two-level caching a sharded `ftroute serve` router runs. Shards load lazily
// on first touch and are evicted least-recently-used when the resident
// bytes (measured as shard file size, the manifest's recorded cost)
// exceed the budget; each resident shard owns a level-two contextCache
// of prepared fault contexts, which dies with it. Requests pin the
// shards they are answering from, so eviction never frees a shard
// mid-batch — a pinned shard is skipped and the cache may transiently
// exceed its budget rather than stall traffic.

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"ftrouting"
	"ftrouting/internal/blob"
	"ftrouting/internal/obs"
)

// shardEntry is one resident (or loading) shard. Loading runs outside
// the cache lock, once per entry; concurrent requests for the same shard
// share the load. A goroutine holding the entry keeps using it after
// eviction (the entry leaves the table, not the holder's hands).
type shardEntry struct {
	id    int
	bytes int64
	once  sync.Once
	shard *ftrouting.Shard
	err   error
	// contexts is the shard's prepared-fault-context LRU (level two).
	contexts *contextCache
	// pins counts in-flight requests answering from this shard; guarded
	// by the cache mutex.
	pins int
}

// shardCounters accumulates one shard id's lifetime statistics across
// loads and evictions (the /v1/stats per-shard rows).
type shardCounters struct {
	loads, evictions               uint64
	ctxHits, ctxMisses, ctxEvicted uint64
}

// shardCache is the bounded resident-shard set. A budget < 0 disables
// eviction (every touched shard stays resident).
type shardCache struct {
	m      *ftrouting.Manifest
	store  blob.Store
	budget int64
	ctxCap int

	// Optional instruments (nil-safe, set at server construction): shard
	// load latency, resident bytes, evictions, and the store's fetch
	// latency/retry/failure trio.
	loadTime      *obs.Histogram
	residentGauge *obs.Gauge
	evictedCtr    *obs.Counter
	fetchTime     *obs.Histogram
	retryCtr      *obs.Counter
	failCtr       *obs.Counter

	// Store fetch counters for /v1/stats, fed by observeFetch from the
	// store's own goroutines (hence atomic, not mu).
	fetches, fetchRetries, fetchFailures atomic.Uint64

	mu        sync.Mutex
	entries   map[int]*list.Element
	order     *list.List // front = most recently used
	resident  int64      // bytes of entries in the table
	loads     uint64
	evictions uint64
	counters  map[int]*shardCounters
}

// newShardCache builds the cache over the given blob store (nil selects
// the manifest's own).
func newShardCache(m *ftrouting.Manifest, store blob.Store, budget int64, ctxCap int) *shardCache {
	if store == nil {
		store = m.Store()
	}
	return &shardCache{
		m:        m,
		store:    store,
		budget:   budget,
		ctxCap:   ctxCap,
		entries:  make(map[int]*list.Element),
		order:    list.New(),
		counters: make(map[int]*shardCounters),
	}
}

// observeFetch folds the store's fetch events into the stats counters
// and the obs instruments. Installed on Observable stores only, so
// local-directory serving reports no fetch traffic.
func (c *shardCache) observeFetch(ev blob.Event) {
	switch ev.Kind {
	case blob.EventRetry:
		c.fetchRetries.Add(1)
		c.retryCtr.Inc()
	case blob.EventFetch:
		if ev.Err != nil {
			c.fetchFailures.Add(1)
			c.failCtr.Inc()
			return
		}
		c.fetches.Add(1)
		c.fetchTime.Observe(ev.Duration)
	}
}

// counter returns the persistent counters of a shard id (callers hold mu).
func (c *shardCache) counter(id int) *shardCounters {
	s := c.counters[id]
	if s == nil {
		s = &shardCounters{}
		c.counters[id] = s
	}
	return s
}

// acquireAll returns the entries of the given shards, loading absent
// ones, all pinned against eviction — one lock round for the whole
// batch. On error every pin taken is returned. Callers must releaseAll
// when the request finishes.
func (c *shardCache) acquireAll(ids []int) ([]*shardEntry, error) {
	out := make([]*shardEntry, 0, len(ids))
	c.mu.Lock()
	for _, id := range ids {
		var e *shardEntry
		if el, ok := c.entries[id]; ok {
			c.order.MoveToFront(el)
			e = el.Value.(*shardEntry)
			e.pins++
		} else {
			e = &shardEntry{id: id, bytes: c.m.ShardBytes(id), contexts: newContextCache(c.ctxCap), pins: 1}
			c.entries[id] = c.order.PushFront(e)
			c.resident += e.bytes
			c.residentGauge.Set(c.resident)
			c.loads++
			c.counter(id).loads++
		}
		out = append(out, e)
	}
	c.evictOver()
	c.mu.Unlock()
	// Load outside the lock, once per entry; concurrent requests for the
	// same shard share one load. Every entry's load runs even after an
	// earlier one fails, so no entry this call inserted is ever left in
	// the table unloaded (a never-loaded entry would sit there counted as
	// resident bytes with nothing behind it).
	var firstErr error
	for _, e := range out {
		e := e
		e.once.Do(func() {
			start := time.Now()
			e.shard, e.err = c.m.LoadShardFrom(c.store, e.id)
			if e.err == nil {
				c.loadTime.Observe(time.Since(start))
			}
		})
		if e.err != nil && firstErr == nil {
			firstErr = e.err
		}
	}
	if firstErr != nil {
		// Failed loads hold no slot: drop them so a repaired shard file can
		// load on retry, then undo every pin of this call.
		c.mu.Lock()
		for _, e := range out {
			if e.err != nil {
				c.removeLocked(e.id, e, false)
			}
			e.pins--
		}
		c.evictOver()
		c.mu.Unlock()
		return nil, firstErr
	}
	return out, nil
}

// releaseAll unpins entries acquired by acquireAll.
func (c *shardCache) releaseAll(entries []*shardEntry) {
	c.mu.Lock()
	for _, e := range entries {
		e.pins--
	}
	c.evictOver()
	c.mu.Unlock()
}

// evictOver evicts least-recently-used unpinned shards until the
// resident bytes fit the budget (callers hold mu). Pinned shards are
// skipped: a batch in flight keeps its shards, and the budget is a
// target the cache returns to, not a hard ceiling.
func (c *shardCache) evictOver() {
	if c.budget < 0 {
		return
	}
	for el := c.order.Back(); el != nil && c.resident > c.budget; {
		prev := el.Prev()
		e := el.Value.(*shardEntry)
		if e.pins == 0 {
			c.removeLocked(e.id, e, true)
		}
		el = prev
	}
}

// removeLocked drops an entry iff it still occupies its slot, folding its
// context-cache counters into the persistent per-shard statistics.
func (c *shardCache) removeLocked(id int, e *shardEntry, evicted bool) {
	el, ok := c.entries[id]
	if !ok || el.Value.(*shardEntry) != e {
		return
	}
	c.order.Remove(el)
	delete(c.entries, id)
	c.resident -= e.bytes
	c.residentGauge.Set(c.resident)
	if evicted {
		c.evictions++
		c.counter(id).evictions++
		c.evictedCtr.Inc()
	}
	cs := e.contexts.stats()
	pc := c.counter(id)
	pc.ctxHits += cs.Hits
	pc.ctxMisses += cs.Misses
	pc.ctxEvicted += cs.Evictions
}

// stats snapshots the cache: global totals plus one row per shard of the
// manifest (resident or not).
func (c *shardCache) stats() ShardCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := ShardCacheStats{
		BudgetBytes:   c.budget,
		ResidentBytes: c.resident,
		TotalShards:   c.m.NumShards(),
		Loads:         c.loads,
		Evictions:     c.evictions,
		Fetches:       c.fetches.Load(),
		FetchRetries:  c.fetchRetries.Load(),
		FetchFailures: c.fetchFailures.Load(),
	}
	live := make(map[int]*shardEntry, len(c.entries))
	for id, el := range c.entries {
		live[id] = el.Value.(*shardEntry)
	}
	out.ResidentShards = len(live)
	for id := 0; id < c.m.NumShards(); id++ {
		row := ShardEntryStats{ID: id, Bytes: c.m.ShardBytes(id)}
		if pc := c.counters[id]; pc != nil {
			row.Loads = pc.loads
			row.Evictions = pc.evictions
			row.ContextHits = pc.ctxHits
			row.ContextMisses = pc.ctxMisses
			row.ContextEvictions = pc.ctxEvicted
		}
		if e, ok := live[id]; ok {
			row.Resident = true
			cs := e.contexts.stats()
			row.ContextHits += cs.Hits
			row.ContextMisses += cs.Misses
			row.ContextEvictions += cs.Evictions
			row.Contexts = cs.Size
		}
		out.Shards = append(out.Shards, row)
	}
	return out
}

// aggregateContextStats folds every shard's context-cache counters into
// one CacheStats so the /v1/stats "cache" block keeps meaning "prepared
// fault contexts" for sharded servers too.
func (c *shardCache) aggregateContextStats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	agg := CacheStats{Capacity: c.ctxCap}
	for _, pc := range c.counters {
		agg.Hits += pc.ctxHits
		agg.Misses += pc.ctxMisses
		agg.Evictions += pc.ctxEvicted
	}
	for _, el := range c.entries {
		cs := el.Value.(*shardEntry).contexts.stats()
		agg.Hits += cs.Hits
		agg.Misses += cs.Misses
		agg.Evictions += cs.Evictions
		agg.Size += cs.Size
	}
	return agg
}
