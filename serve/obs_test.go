package serve

// Observability suite: the instrumented serving stack must change
// nothing a client can see — query bodies stay byte-identical, stats
// stays backward-compatible — while /metrics exposes well-formed
// Prometheus text on every tier, trace IDs propagate edge → proxy →
// replica (and through stacked proxies), access logs carry the golden
// field set, and ?debug=timing echoes the per-stage breakdown with
// nested upstream timings.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"ftrouting"
	"ftrouting/internal/obs"
	"ftrouting/serve/api"
)

// captureHandler is a slog.Handler that records every emitted line for
// assertion: level, message and flattened attributes.
type logRecord struct {
	level slog.Level
	msg   string
	attrs map[string]slog.Value
}

type captureHandler struct {
	mu   sync.Mutex
	recs []logRecord
}

func (h *captureHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h *captureHandler) Handle(_ context.Context, r slog.Record) error {
	rec := logRecord{level: r.Level, msg: r.Message, attrs: make(map[string]slog.Value)}
	r.Attrs(func(a slog.Attr) bool {
		rec.attrs[a.Key] = a.Value
		return true
	})
	h.mu.Lock()
	h.recs = append(h.recs, rec)
	h.mu.Unlock()
	return nil
}

func (h *captureHandler) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h *captureHandler) WithGroup(string) slog.Handler      { return h }

func (h *captureHandler) records() []logRecord {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]logRecord(nil), h.recs...)
}

// testObs builds a fully-enabled Observability with a capturing log.
func testObs() (Observability, *captureHandler) {
	h := &captureHandler{}
	return Observability{Metrics: obs.NewRegistry(), AccessLog: slog.New(h)}, h
}

// obsScheme builds the small connectivity scheme the suite serves.
func obsScheme(t *testing.T) (*ftrouting.Graph, *ftrouting.ConnLabels) {
	t.Helper()
	g := ftrouting.RandomConnected(30, 45, 7)
	labels, err := ftrouting.BuildConnectivityLabels(g, ftrouting.ConnOptions{
		Scheme: ftrouting.SketchBased, MaxFaults: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return g, labels
}

// scrape fetches a /metrics body.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, obs.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

var promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)

// lintPromText validates Prometheus text exposition 0.0.4: every sample
// line parses, HELP and TYPE appear exactly once per family and before
// its samples, and every histogram series has monotone cumulative
// buckets whose terminal le="+Inf" count equals its _count sample.
func lintPromText(t *testing.T, body string) {
	t.Helper()
	help := make(map[string]bool)
	typ := make(map[string]string)
	type histSeries struct {
		les      []float64
		counts   []uint64
		lastInf  bool
		count    uint64
		hasCount bool
	}
	hists := make(map[string]*histSeries)
	baseOf := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suf); ok && typ[b] == "histogram" {
				return b
			}
		}
		return name
	}
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			fields := strings.SplitN(line[len("# HELP "):], " ", 2)
			if help[fields[0]] {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, fields[0])
			}
			help[fields[0]] = true
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line[len("# TYPE "):])
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			if _, dup := typ[fields[0]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, fields[0])
			}
			typ[fields[0]] = fields[1]
		case line == "":
			t.Fatalf("line %d: blank line in exposition", ln+1)
		default:
			m := promSampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: unparseable sample: %q", ln+1, line)
			}
			name, labels, value := m[1], m[2], m[3]
			base := baseOf(name)
			if !help[base] || typ[base] == "" {
				t.Fatalf("line %d: sample %s before HELP/TYPE of %s", ln+1, name, base)
			}
			if typ[base] != "histogram" {
				if _, err := strconv.ParseFloat(value, 64); err != nil {
					t.Fatalf("line %d: bad value %q: %v", ln+1, value, err)
				}
				continue
			}
			// Histogram sample: key the series by base name + labels sans le
			// (a label-less histogram's bucket lines reduce to empty braces).
			leRe := regexp.MustCompile(`,?le="([^"]*)"`)
			series := leRe.ReplaceAllString(labels, "")
			if series == "{}" {
				series = ""
			}
			key := base + "|" + series
			s := hists[key]
			if s == nil {
				s = &histSeries{}
				hists[key] = s
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				lm := leRe.FindStringSubmatch(labels)
				if lm == nil {
					t.Fatalf("line %d: _bucket without le label: %q", ln+1, line)
				}
				c, err := strconv.ParseUint(value, 10, 64)
				if err != nil {
					t.Fatalf("line %d: bad bucket count %q", ln+1, value)
				}
				if lm[1] == "+Inf" {
					s.lastInf = true
					s.les = append(s.les, -1)
				} else {
					if s.lastInf {
						t.Fatalf("line %d: bucket after le=\"+Inf\"", ln+1)
					}
					le, err := strconv.ParseFloat(lm[1], 64)
					if err != nil {
						t.Fatalf("line %d: bad le %q", ln+1, lm[1])
					}
					if n := len(s.les); n > 0 && s.les[n-1] >= le {
						t.Fatalf("line %d: le %v not increasing", ln+1, le)
					}
					s.les = append(s.les, le)
				}
				if n := len(s.counts); n > 0 && s.counts[n-1] > c {
					t.Fatalf("line %d: cumulative bucket count decreased", ln+1)
				}
				s.counts = append(s.counts, c)
			case strings.HasSuffix(name, "_count"):
				c, err := strconv.ParseUint(value, 10, 64)
				if err != nil {
					t.Fatalf("line %d: bad count %q", ln+1, value)
				}
				s.count, s.hasCount = c, true
			case strings.HasSuffix(name, "_sum"):
				if _, err := strconv.ParseFloat(value, 64); err != nil {
					t.Fatalf("line %d: bad sum %q", ln+1, value)
				}
			default:
				t.Fatalf("line %d: bare sample %s of histogram family %s", ln+1, name, base)
			}
		}
	}
	for key, s := range hists {
		if !s.lastInf {
			t.Fatalf("histogram %s: no terminal le=\"+Inf\" bucket", key)
		}
		if !s.hasCount {
			t.Fatalf("histogram %s: missing _count", key)
		}
		if got := s.counts[len(s.counts)-1]; got != s.count {
			t.Fatalf("histogram %s: +Inf bucket %d != _count %d", key, got, s.count)
		}
	}
}

// metricValue extracts one sample value (family + exact label string).
func metricValue(t *testing.T, body, sample string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if name, val, ok := strings.Cut(line, " "); ok && name == sample {
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				t.Fatalf("sample %s: bad value %q", sample, val)
			}
			return f
		}
	}
	t.Fatalf("sample %s not found in:\n%s", sample, body)
	return 0
}

func TestServeMetricsExposition(t *testing.T) {
	g, labels := obsScheme(t)
	cfg, _ := testObs()
	ts := startServer(t, labels, Options{Obs: cfg})

	pairs := servePairs(g.N())
	for i := 0; i < 3; i++ {
		status, _ := postJSON(t, ts.URL+"/v1/connected", api.QueryRequest{
			Pairs: pairs, Faults: ftrouting.RandomFaults(g, 2, uint64(i))})
		if status != http.StatusOK {
			t.Fatalf("query %d: status %d", i, status)
		}
	}
	if status, _ := postJSON(t, ts.URL+"/v1/connected", api.QueryRequest{
		Pairs: [][2]int32{{0, 999}}}); status != http.StatusBadRequest {
		t.Fatalf("bad pair: status %d", status)
	}

	body := scrape(t, ts.URL)
	lintPromText(t, body)
	if v := metricValue(t, body, `ftroute_requests_total{endpoint="connected"}`); v != 4 {
		t.Fatalf("requests_total = %v, want 4", v)
	}
	if v := metricValue(t, body, `ftroute_request_errors_total{endpoint="connected"}`); v != 1 {
		t.Fatalf("request_errors_total = %v, want 1", v)
	}
	if v := metricValue(t, body, "ftroute_pairs_served_total"); v != float64(3*len(pairs)) {
		t.Fatalf("pairs_served_total = %v, want %d", v, 3*len(pairs))
	}
	// 4 misses: three distinct fault sets plus the failing request, whose
	// empty fault set reaches context prep before pair validation fails.
	if v := metricValue(t, body, "ftroute_context_cache_misses_total"); v != 4 {
		t.Fatalf("cache_misses_total = %v, want 4", v)
	}
	if v := metricValue(t, body, `ftroute_request_seconds_count{endpoint="connected"}`); v != 4 {
		t.Fatalf("request_seconds_count = %v, want 4", v)
	}
	if v := metricValue(t, body, `ftroute_stage_seconds_count{stage="decode"}`); v < 3 {
		t.Fatalf("stage_seconds_count{decode} = %v, want >= 3", v)
	}

	// The uninstrumented server mounts no /metrics.
	plain := startServer(t, labels, Options{})
	resp, err := http.Get(plain.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("plain /metrics: status %d, want 404", resp.StatusCode)
	}
}

func TestShardedMetricsExposition(t *testing.T) {
	g := shardMatrixGraph()
	labels, err := ftrouting.BuildConnectivityLabels(g, ftrouting.ConnOptions{
		Scheme: ftrouting.SketchBased, MaxFaults: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	m := shardScheme(t, labels, ftrouting.ShardOptions{})
	cfg, _ := testObs()
	s, err := NewSharded(m, Options{Obs: cfg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	if status, body := postJSON(t, ts.URL+"/v1/connected", api.QueryRequest{
		Pairs: servePairs(g.N())}); status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}

	body := scrape(t, ts.URL)
	lintPromText(t, body)
	if v := metricValue(t, body, "ftroute_shard_load_seconds_count"); v < 1 {
		t.Fatalf("shard_load_seconds_count = %v, want >= 1", v)
	}
	if v := metricValue(t, body, "ftroute_shard_resident_bytes"); v <= 0 {
		t.Fatalf("shard_resident_bytes = %v, want > 0", v)
	}
}

func TestProxyMetricsExposition(t *testing.T) {
	g := shardMatrixGraph()
	labels, err := ftrouting.BuildConnectivityLabels(g, ftrouting.ConnOptions{
		Scheme: ftrouting.SketchBased, MaxFaults: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	m := shardScheme(t, labels, ftrouting.ShardOptions{})
	replicas := startReplicas(t, m, 2)
	cfg, _ := testObs()
	_, proxy := startProxy(t, m, replicas, ProxyOptions{Obs: cfg})

	if status, body := postJSON(t, proxy.URL+"/v1/connected", api.QueryRequest{
		Pairs: servePairs(g.N())}); status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}

	body := scrape(t, proxy.URL)
	lintPromText(t, body)
	var upstreamCount float64
	for _, r := range replicas {
		upstreamCount += metricValue(t, body,
			fmt.Sprintf(`ftroute_upstream_seconds_count{replica=%q}`, r.URL))
	}
	if upstreamCount < 1 {
		t.Fatalf("upstream_seconds_count total = %v, want >= 1", upstreamCount)
	}
	if v := metricValue(t, body, `ftroute_requests_total{endpoint="connected"}`); v != 1 {
		t.Fatalf("proxy requests_total = %v, want 1", v)
	}
}

// obsReplicas starts n sharded replicas, each with its own capture
// handler, and returns their test servers plus handlers.
func obsReplicas(t *testing.T, m *ftrouting.Manifest, n int) ([]*httptest.Server, []*captureHandler) {
	t.Helper()
	servers := make([]*httptest.Server, n)
	handlers := make([]*captureHandler, n)
	for i := range servers {
		cfg, h := testObs()
		s, err := NewSharded(m, Options{Obs: cfg})
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = httptest.NewServer(s)
		t.Cleanup(servers[i].Close)
		handlers[i] = h
	}
	return servers, handlers
}

// queryRecords filters a tier's log to query-endpoint lines (the proxy's
// startup healthz verification logs on replicas too).
func queryRecords(recs []logRecord) []logRecord {
	var out []logRecord
	for _, r := range recs {
		if ep := r.attrs["endpoint"]; ep.Kind() == slog.KindString && ep.String() != "healthz" && ep.String() != "stats" {
			out = append(out, r)
		}
	}
	return out
}

func TestTracePropagationThroughProxyStack(t *testing.T) {
	g := shardMatrixGraph()
	labels, err := ftrouting.BuildConnectivityLabels(g, ftrouting.ConnOptions{
		Scheme: ftrouting.SketchBased, MaxFaults: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	m := shardScheme(t, labels, ftrouting.ShardOptions{})
	replicas, replicaLogs := obsReplicas(t, m, 2)

	innerCfg, innerLog := testObs()
	_, inner := startProxy(t, m, replicas, ProxyOptions{Obs: innerCfg})
	outerCfg, outerLog := testObs()
	_, outer := startProxy(t, m, []*httptest.Server{inner}, ProxyOptions{Obs: outerCfg})

	// A client-supplied trace ID must reach every tier's access log.
	const trace = "client-trace-42"
	raw, _ := json.Marshal(api.QueryRequest{Pairs: servePairs(g.N())})
	req, err := http.NewRequest(http.MethodPost, outer.URL+"/v1/connected", strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(api.TraceHeader, trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	tierLogs := map[string][]*captureHandler{
		"outer proxy": {outerLog}, "inner proxy": {innerLog}, "replicas": replicaLogs}
	replicaLines := 0
	for tier, handlers := range tierLogs {
		lines := 0
		for _, h := range handlers {
			for _, rec := range queryRecords(h.records()) {
				lines++
				if got := rec.attrs["trace"].String(); got != trace {
					t.Fatalf("%s logged trace %q, want %q", tier, got, trace)
				}
			}
		}
		if lines == 0 {
			t.Fatalf("%s logged no query access lines", tier)
		}
		if tier == "replicas" {
			replicaLines = lines
		}
	}
	if replicaLines < 2 {
		t.Fatalf("replicas logged %d sub-batch lines, want >= 2 (multi-shard fan-out)", replicaLines)
	}

	// Without a client header the edge mints one well-formed ID, and the
	// same ID still reaches the replicas.
	if status, _ := postJSON(t, outer.URL+"/v1/connected", api.QueryRequest{
		Pairs: servePairs(g.N())}); status != http.StatusOK {
		t.Fatalf("second request failed")
	}
	recs := queryRecords(outerLog.records())
	minted := recs[len(recs)-1].attrs["trace"].String()
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(minted) {
		t.Fatalf("minted trace %q is not 16 hex chars", minted)
	}
	found := false
	for _, h := range replicaLogs {
		for _, rec := range queryRecords(h.records()) {
			if rec.attrs["trace"].String() == minted {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("minted trace %q never reached a replica log", minted)
	}
}

func TestAccessLogFields(t *testing.T) {
	g, labels := obsScheme(t)
	cfg, h := testObs()
	ts := startServer(t, labels, Options{Obs: cfg})

	faults := ftrouting.RandomFaults(g, 2, 3)
	pairs := servePairs(g.N())
	if status, _ := postJSON(t, ts.URL+"/v1/connected", api.QueryRequest{
		Pairs: pairs, Faults: faults}); status != http.StatusOK {
		t.Fatalf("query failed")
	}
	recs := h.records()
	if len(recs) != 1 {
		t.Fatalf("got %d log records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.level != slog.LevelInfo || rec.msg != "request" {
		t.Fatalf("level %v msg %q, want info/request", rec.level, rec.msg)
	}
	for key, want := range map[string]string{
		"endpoint": "connected", "cache": "miss"} {
		if got := rec.attrs[key].String(); got != want {
			t.Fatalf("attr %s = %q, want %q", key, got, want)
		}
	}
	for key, want := range map[string]int64{
		"status": 200, "pairs": int64(len(pairs)), "faults": int64(len(faults))} {
		if got := rec.attrs[key].Int64(); got != want {
			t.Fatalf("attr %s = %d, want %d", key, got, want)
		}
	}
	if rec.attrs["total_ns"].Int64() <= 0 {
		t.Fatalf("total_ns = %v, want > 0", rec.attrs["total_ns"])
	}
	for _, stage := range []string{"decode_ns", "context_ns", "eval_ns"} {
		if _, ok := rec.attrs[stage]; !ok {
			t.Fatalf("missing stage attr %s in %v", stage, rec.attrs)
		}
	}
	if _, ok := rec.attrs["code"]; ok {
		t.Fatalf("success line carries an error code")
	}

	// A validation error logs at warn with its machine-readable code.
	if status, _ := postJSON(t, ts.URL+"/v1/connected", api.QueryRequest{
		Pairs: [][2]int32{{0, 999}}}); status != http.StatusBadRequest {
		t.Fatalf("expected 400")
	}
	recs = h.records()
	if len(recs) != 2 {
		t.Fatalf("got %d log records, want 2", len(recs))
	}
	rec = recs[1]
	if rec.level != slog.LevelWarn {
		t.Fatalf("error line level %v, want warn", rec.level)
	}
	if rec.attrs["status"].Int64() != 400 || rec.attrs["code"].String() == "" {
		t.Fatalf("error line status %v code %q", rec.attrs["status"], rec.attrs["code"].String())
	}

	// A repeated fault set hits the prepared-context cache.
	if status, _ := postJSON(t, ts.URL+"/v1/connected", api.QueryRequest{
		Pairs: pairs, Faults: faults}); status != http.StatusOK {
		t.Fatalf("repeat query failed")
	}
	recs = h.records()
	if got := recs[2].attrs["cache"].String(); got != "hit" {
		t.Fatalf("repeat query cache = %q, want hit", got)
	}
}

func TestAccessLogSampling(t *testing.T) {
	g, labels := obsScheme(t)
	h := &captureHandler{}
	ts := startServer(t, labels, Options{Obs: Observability{
		AccessLog: slog.New(h), LogSample: 3}})

	pairs := servePairs(g.N())
	for i := 0; i < 9; i++ {
		if status, _ := postJSON(t, ts.URL+"/v1/connected", api.QueryRequest{Pairs: pairs}); status != http.StatusOK {
			t.Fatalf("query %d failed", i)
		}
	}
	if got := len(h.records()); got != 3 {
		t.Fatalf("sampled %d of 9 successes, want 3", got)
	}
	// Errors bypass sampling.
	for i := 0; i < 2; i++ {
		if status, _ := postJSON(t, ts.URL+"/v1/connected", api.QueryRequest{
			Pairs: [][2]int32{{0, 999}}}); status != http.StatusBadRequest {
			t.Fatalf("expected 400")
		}
	}
	if got := len(h.records()); got != 5 {
		t.Fatalf("got %d records after 2 errors, want 5", got)
	}
}

func TestDebugTimingEnvelope(t *testing.T) {
	g, labels := obsScheme(t)
	cfg, _ := testObs()
	ts := startServer(t, labels, Options{Obs: cfg})

	pairs := servePairs(g.N())
	req := api.QueryRequest{Pairs: pairs, Faults: ftrouting.RandomFaults(g, 2, 5)}

	// Without the opt-in the instrumented body carries no timing key.
	status, body := postJSON(t, ts.URL+"/v1/connected", req)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if strings.Contains(string(body), `"timing"`) {
		t.Fatalf("uninstrumented body leaks timing: %s", body)
	}

	status, body = postJSON(t, ts.URL+"/v1/connected?debug=timing", req)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	var resp api.ConnectedResponse
	decodeInto(t, body, &resp)
	if resp.Timing == nil {
		t.Fatalf("no timing echo in %s", body)
	}
	if resp.Timing.Trace == "" || resp.Timing.TotalNanos <= 0 {
		t.Fatalf("timing = %+v", resp.Timing)
	}
	stages := make(map[string]bool)
	for _, st := range resp.Timing.Stages {
		stages[st.Stage] = true
	}
	for _, want := range []string{"decode", "context", "eval"} {
		if !stages[want] {
			t.Fatalf("stage %s missing from %+v", want, resp.Timing.Stages)
		}
	}
}

func TestDebugTimingNestedUpstreams(t *testing.T) {
	g := shardMatrixGraph()
	labels, err := ftrouting.BuildConnectivityLabels(g, ftrouting.ConnOptions{
		Scheme: ftrouting.SketchBased, MaxFaults: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	m := shardScheme(t, labels, ftrouting.ShardOptions{})
	replicas, _ := obsReplicas(t, m, 2)
	innerCfg, _ := testObs()
	_, inner := startProxy(t, m, replicas, ProxyOptions{Obs: innerCfg})
	outerCfg, _ := testObs()
	_, outer := startProxy(t, m, []*httptest.Server{inner}, ProxyOptions{Obs: outerCfg})

	status, body := postJSON(t, outer.URL+"/v1/connected?debug=timing",
		api.QueryRequest{Pairs: servePairs(g.N())})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp api.ConnectedResponse
	decodeInto(t, body, &resp)
	if resp.Timing == nil || len(resp.Timing.Upstreams) == 0 {
		t.Fatalf("outer timing has no upstreams: %s", body)
	}
	sawReplicaStage := false
	for _, up := range resp.Timing.Upstreams {
		if up.Replica != inner.URL {
			t.Fatalf("outer upstream replica %q, want %q", up.Replica, inner.URL)
		}
		if up.Nanos <= 0 || up.Timing == nil {
			t.Fatalf("outer upstream not echoed: %+v", up)
		}
		// The inner proxy's echo nests the replicas' own echoes.
		for _, inUp := range up.Timing.Upstreams {
			if inUp.Timing != nil && len(inUp.Timing.Stages) > 0 {
				sawReplicaStage = true
			}
		}
	}
	if !sawReplicaStage {
		t.Fatalf("no replica stage timings nested two proxies deep: %s", body)
	}
}

func TestInstrumentedResponsesByteIdentical(t *testing.T) {
	g := shardMatrixGraph()
	labels, err := ftrouting.BuildConnectivityLabels(g, ftrouting.ConnOptions{
		Scheme: ftrouting.SketchBased, MaxFaults: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	plain := startServer(t, labels, Options{})
	cfg, _ := testObs()
	instrumented := startServer(t, labels, Options{Obs: cfg})
	assertSameResponses(t, plain, instrumented, "/v1/connected", shardRequests(g))

	m := shardScheme(t, labels, ftrouting.ShardOptions{})
	_, plainProxy := startProxy(t, m, startReplicas(t, m, 2), ProxyOptions{})
	obsUp, _ := obsReplicas(t, m, 2)
	pcfg, _ := testObs()
	_, obsProxy := startProxy(t, m, obsUp, ProxyOptions{Obs: pcfg})
	assertSameResponses(t, plainProxy, obsProxy, "/v1/connected", shardRequests(g))
}

func TestStatsLatencySummaries(t *testing.T) {
	g, labels := obsScheme(t)
	cfg, _ := testObs()
	ts := startServer(t, labels, Options{Obs: cfg})

	pairs := servePairs(g.N())
	for i := 0; i < 4; i++ {
		if status, _ := postJSON(t, ts.URL+"/v1/connected", api.QueryRequest{Pairs: pairs}); status != http.StatusOK {
			t.Fatalf("query %d failed", i)
		}
	}
	// The typed client decodes the extended body.
	stats, err := api.New(ts.URL).Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	lat, ok := stats.Latency["connected"]
	if !ok {
		t.Fatalf("no latency summary for connected in %+v", stats)
	}
	if lat.Count != 4 || lat.MeanNanos <= 0 || lat.P50Nanos <= 0 || lat.P50Nanos > lat.P99Nanos {
		t.Fatalf("latency summary %+v", lat)
	}
	for _, stage := range []string{"decode", "eval"} {
		if s, ok := stats.Stages[stage]; !ok || s.Count == 0 || s.MeanNanos <= 0 {
			t.Fatalf("stage summary %s = %+v (present %v)", stage, s, ok)
		}
	}

	// The uninstrumented stats body keeps its pre-instrumentation shape.
	plain := startServer(t, labels, Options{})
	if status, _ := postJSON(t, plain.URL+"/v1/connected", api.QueryRequest{Pairs: pairs}); status != http.StatusOK {
		t.Fatalf("plain query failed")
	}
	resp, err := http.Get(plain.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(body), `"latency"`) || strings.Contains(string(body), `"stages"`) {
		t.Fatalf("uninstrumented stats leaks summaries: %s", body)
	}
}
