package serve

// Fan-out proxy equivalence suite: a Proxy over shard-affine replicas
// must answer every request — results, status codes and error envelopes
// — byte-identically to a monolithic server over the same scheme, across
// the generator matrix, at replication factors 1 and 2. Plus placement
// planning, startup verification against foreign replicas, replica-down
// failover (typed upstream-failure envelope, healthy shards keep
// answering, replication 2 survives a death), proxy stacking, and
// fronting monolithic daemons.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"ftrouting"
	"ftrouting/serve/api"
)

// shardScheme splits a scheme into a temp dir and returns the loaded
// manifest.
func shardScheme(t *testing.T, scheme any, sopts ftrouting.ShardOptions) *ftrouting.Manifest {
	t.Helper()
	dir := t.TempDir()
	var err error
	switch v := scheme.(type) {
	case *ftrouting.ConnLabels:
		_, err = ftrouting.SaveShardedConn(dir, v, sopts)
	case *ftrouting.DistLabels:
		_, err = ftrouting.SaveShardedDist(dir, v, sopts)
	case *ftrouting.Router:
		_, err = ftrouting.SaveShardedRouter(dir, v, sopts)
	default:
		t.Fatalf("unsupported scheme %T", scheme)
	}
	if err != nil {
		t.Fatal(err)
	}
	m, err := ftrouting.LoadManifest(dir + "/" + ftrouting.ManifestFileName)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// startReplicas serves the manifest from n independent sharded servers
// (each with its own caches, as deployed replicas would run).
func startReplicas(t *testing.T, m *ftrouting.Manifest, n int) []*httptest.Server {
	t.Helper()
	out := make([]*httptest.Server, n)
	for i := range out {
		s, err := NewSharded(m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = httptest.NewServer(s)
		t.Cleanup(out[i].Close)
	}
	return out
}

// startProxy builds a Proxy over the replicas and serves it.
func startProxy(t *testing.T, m *ftrouting.Manifest, replicas []*httptest.Server, opts ProxyOptions) (*Proxy, *httptest.Server) {
	t.Helper()
	urls := make([]string, len(replicas))
	for i, r := range replicas {
		urls[i] = r.URL
	}
	p, err := NewProxy(context.Background(), m, urls, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p)
	t.Cleanup(ts.Close)
	return p, ts
}

func TestProxyConnectedEquivalence(t *testing.T) {
	mats := connMatrix()
	mats["multicomp"] = shardMatrixGraph()
	for name, g := range mats {
		for _, replication := range []int{1, 2} {
			t.Run(fmt.Sprintf("%s/replication%d", name, replication), func(t *testing.T) {
				labels, err := ftrouting.BuildConnectivityLabels(g, ftrouting.ConnOptions{
					Scheme: ftrouting.SketchBased, MaxFaults: 3, Seed: 11})
				if err != nil {
					t.Fatal(err)
				}
				mono := startServer(t, labels, Options{})
				m := shardScheme(t, labels, ftrouting.ShardOptions{})
				_, proxy := startProxy(t, m, startReplicas(t, m, 2), ProxyOptions{Replication: replication})
				assertSameResponses(t, mono, proxy, "/v1/connected", shardRequests(g))
			})
		}
	}
}

func TestProxyEstimateEquivalence(t *testing.T) {
	mats := distMatrix()
	mats["multicomp"] = shardMatrixGraph()
	for name, g := range mats {
		for _, replication := range []int{1, 2} {
			t.Run(fmt.Sprintf("%s/replication%d", name, replication), func(t *testing.T) {
				labels, err := ftrouting.BuildDistanceLabels(g, 3, 2, 11)
				if err != nil {
					t.Fatal(err)
				}
				mono := startServer(t, labels, Options{})
				m := shardScheme(t, labels, ftrouting.ShardOptions{Shards: 2})
				_, proxy := startProxy(t, m, startReplicas(t, m, 2), ProxyOptions{Replication: replication})
				assertSameResponses(t, mono, proxy, "/v1/estimate", shardRequests(g))
			})
		}
	}
}

func TestProxyRouteEquivalence(t *testing.T) {
	mats := map[string]*ftrouting.Graph{
		"random":    ftrouting.RandomConnected(14, 21, 3),
		"multicomp": shardMatrixGraph(),
	}
	for name, g := range mats {
		for _, replication := range []int{1, 2} {
			t.Run(fmt.Sprintf("%s/replication%d", name, replication), func(t *testing.T) {
				router, err := ftrouting.NewRouter(g, 3, 2, ftrouting.RouterOptions{Seed: 11, Balanced: true})
				if err != nil {
					t.Fatal(err)
				}
				mono := startServer(t, router, Options{})
				m := shardScheme(t, router, ftrouting.ShardOptions{})
				_, proxy := startProxy(t, m, startReplicas(t, m, 2), ProxyOptions{Replication: replication})
				for _, endpoint := range []string{"/v1/route", "/v1/route-forbidden"} {
					assertSameResponses(t, mono, proxy, endpoint, shardRequests(g))
				}
			})
		}
	}
}

// TestProxyFrontsMonolithicReplica proves the digest-bound protocol
// makes tiers interchangeable: a proxy planning over a manifest can fan
// out to replicas holding the WHOLE scheme in memory, because a
// monolithic daemon of the same build reports the same scheme digest and
// answers any sub-batch identically.
func TestProxyFrontsMonolithicReplica(t *testing.T) {
	g := shardMatrixGraph()
	labels, err := ftrouting.BuildConnectivityLabels(g, ftrouting.ConnOptions{MaxFaults: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	mono := startServer(t, labels, Options{})
	m := shardScheme(t, labels, ftrouting.ShardOptions{})
	p, err := NewProxy(context.Background(), m, []string{mono.URL}, ProxyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	proxy := httptest.NewServer(p)
	defer proxy.Close()
	assertSameResponses(t, mono, proxy, "/v1/connected", shardRequests(g))
}

// TestProxyStacks proves proxies front proxies: the same wire protocol
// and digest at every level means a two-tier fan-out answers
// byte-identically to the monolithic daemon too.
func TestProxyStacks(t *testing.T) {
	g := shardMatrixGraph()
	labels, err := ftrouting.BuildConnectivityLabels(g, ftrouting.ConnOptions{MaxFaults: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	mono := startServer(t, labels, Options{})
	m := shardScheme(t, labels, ftrouting.ShardOptions{})
	_, lower := startProxy(t, m, startReplicas(t, m, 2), ProxyOptions{})
	upper, err := NewProxy(context.Background(), m, []string{lower.URL}, ProxyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(upper)
	defer ts.Close()
	assertSameResponses(t, mono, ts, "/v1/connected", shardRequests(g))
}

func TestPlanPlacement(t *testing.T) {
	sizes := []int64{100, 500, 300, 200}
	// Replication 1 over 2 replicas, greedy by decreasing bytes: shard 1
	// (500) -> r0, shard 2 (300) -> r1, shard 3 (200) -> r1 (300 < 500),
	// shard 0 (100) -> the 500/500 tie breaks to r0.
	got := PlanPlacement(sizes, 2, 1)
	want := [][]int{{0}, {0}, {1}, {1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("placement = %v, want %v", got, want)
	}
	// Deterministic: same inputs, same plan.
	if again := PlanPlacement(sizes, 2, 1); !reflect.DeepEqual(again, got) {
		t.Fatalf("placement not deterministic: %v vs %v", again, got)
	}
	// Replication 2 over 3 replicas: every shard on exactly 2 distinct
	// replicas, and the by-bytes load spread stays within one max shard.
	got = PlanPlacement(sizes, 3, 2)
	load := make([]int64, 3)
	for id, reps := range got {
		if len(reps) != 2 || reps[0] == reps[1] {
			t.Fatalf("shard %d assigned %v, want 2 distinct replicas", id, reps)
		}
		for _, r := range reps {
			load[r] += sizes[id]
		}
	}
	minL, maxL := load[0], load[0]
	for _, l := range load[1:] {
		minL, maxL = min(minL, l), max(maxL, l)
	}
	if maxL-minL > 500 {
		t.Fatalf("load spread %v exceeds the largest shard", load)
	}
	// Replication above the replica count clamps; below 1 clamps to 1.
	for _, rep := range []int{0, 5} {
		for id, reps := range PlanPlacement(sizes, 2, rep) {
			wantLen := 1
			if rep == 5 {
				wantLen = 2
			}
			if len(reps) != wantLen {
				t.Fatalf("replication %d: shard %d got %d replicas", rep, id, len(reps))
			}
		}
	}
	// No shards: empty plan.
	if got := PlanPlacement(nil, 3, 1); len(got) != 0 {
		t.Fatalf("empty placement = %v", got)
	}
}

// proxyFixture builds the multicomponent scheme, its manifest and two
// replicas for the failure tests, and returns a vertex inside each
// shard.
func proxyFixture(t *testing.T) (m *ftrouting.Manifest, replicas []*httptest.Server, shardVertex map[int]int32) {
	t.Helper()
	g := shardMatrixGraph()
	// Cut-based: its fault bound is real (sketch labels are unbounded), so
	// the replica-down test can check local fault validation.
	labels, err := ftrouting.BuildConnectivityLabels(g, ftrouting.ConnOptions{
		Scheme: ftrouting.CutBased, MaxFaults: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	m = shardScheme(t, labels, ftrouting.ShardOptions{})
	if m.NumShards() < 3 {
		t.Fatalf("fixture needs >= 3 shards, got %d", m.NumShards())
	}
	shardVertex = make(map[int]int32)
	for v := int32(0); int(v) < g.N(); v++ {
		id := m.ShardOf(v)
		if _, ok := shardVertex[id]; !ok {
			shardVertex[id] = v
		}
	}
	return m, startReplicas(t, m, 2), shardVertex
}

// TestProxyReplicaDown kills one of two replicas at replication 1 and
// checks the typed upstream-failure envelope for its shards while the
// healthy replica's shards keep answering.
func TestProxyReplicaDown(t *testing.T) {
	m, replicas, shardVertex := proxyFixture(t)
	p, ts := startProxy(t, m, replicas, ProxyOptions{Replication: 1})

	// Find one shard on each replica, then kill replica 1.
	placement := p.Placement()
	if len(placement[0]) == 0 || len(placement[1]) == 0 {
		t.Fatalf("placement %v leaves a replica empty", placement)
	}
	aliveShard, deadShard := placement[0][0], placement[1][0]
	replicas[1].Close()

	query := func(shard int) (int, []byte) {
		v := shardVertex[shard]
		return postRaw(t, ts.URL+"/v1/connected", fmt.Sprintf(`{"pairs":[[%d,%d]]}`, v, v))
	}
	// Healthy shard answers.
	status, body := query(aliveShard)
	if status != http.StatusOK {
		t.Fatalf("healthy shard %d: status %d: %s", aliveShard, status, body)
	}
	var cr ConnectedResponse
	if err := json.Unmarshal(body, &cr); err != nil || len(cr.Results) != 1 || !cr.Results[0] {
		t.Fatalf("healthy shard %d: bad answer %s (err %v)", aliveShard, body, err)
	}
	// Dead replica's shard reports the typed envelope.
	status, body = query(deadShard)
	expectError(t, status, body, http.StatusBadGateway, codeUpstream, -1)
	// Validation failures still never touch a replica: a fault-bound error
	// over the dead shard's component answers 400, not 502.
	v := shardVertex[deadShard]
	status, body = postRaw(t, ts.URL+"/v1/connected",
		fmt.Sprintf(`{"pairs":[[%d,%d]],"faults":[0,1,2,3,4,5,6,7,8]}`, v, v))
	expectError(t, status, body, http.StatusBadRequest, string(ftrouting.CodeFaultBound), -1)
	// The upstream stats carry the transport failures.
	var failures uint64
	for _, u := range p.Stats().Upstreams {
		failures += u.Failures
	}
	if failures == 0 {
		t.Fatal("stats report no upstream failures after a dead-replica query")
	}
}

// TestProxyReplicationSurvivesDeath proves replication 2 rides out a
// replica death: every shard keeps a live replica, so every batch still
// answers byte-identically to the monolithic daemon.
func TestProxyReplicationSurvivesDeath(t *testing.T) {
	g := shardMatrixGraph()
	labels, err := ftrouting.BuildConnectivityLabels(g, ftrouting.ConnOptions{MaxFaults: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	mono := startServer(t, labels, Options{})
	m := shardScheme(t, labels, ftrouting.ShardOptions{})
	replicas := startReplicas(t, m, 2)
	p, proxy := startProxy(t, m, replicas, ProxyOptions{Replication: 2})
	replicas[0].Close()
	// Twice: round-robin rotation starts some sub-requests at the dead
	// replica, exercising failover both ways.
	for round := 0; round < 2; round++ {
		assertSameResponses(t, mono, proxy, "/v1/connected", shardRequests(g))
	}
	var failures uint64
	for _, u := range p.Stats().Upstreams {
		failures += u.Failures
	}
	if failures == 0 {
		t.Fatal("no failovers recorded; the dead replica was never tried")
	}
}

// TestProxyRejectsForeignReplica proves startup verification: a replica
// serving a different build (digest mismatch), a different kind, or
// nothing at all is rejected before the proxy takes traffic.
func TestProxyRejectsForeignReplica(t *testing.T) {
	g := shardMatrixGraph()
	labels, err := ftrouting.BuildConnectivityLabels(g, ftrouting.ConnOptions{MaxFaults: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	m := shardScheme(t, labels, ftrouting.ShardOptions{})

	// Same kind and graph shape, different seed: only the digest differs.
	foreign, err := ftrouting.BuildConnectivityLabels(g, ftrouting.ConnOptions{MaxFaults: 3, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	foreignTS := startServer(t, foreign, Options{})
	if _, err := NewProxy(context.Background(), m, []string{foreignTS.URL}, ProxyOptions{}); err == nil {
		t.Fatal("proxy accepted a replica with a foreign scheme digest")
	}

	// Different scheme kind.
	dist, err := ftrouting.BuildDistanceLabels(g, 3, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	distTS := startServer(t, dist, Options{})
	if _, err := NewProxy(context.Background(), m, []string{distTS.URL}, ProxyOptions{}); err == nil {
		t.Fatal("proxy accepted a replica of the wrong scheme kind")
	}

	// Unreachable replica.
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	if _, err := NewProxy(context.Background(), m, []string{dead.URL}, ProxyOptions{}); err == nil {
		t.Fatal("proxy accepted an unreachable replica")
	}

	// Replication factor beyond the replica count.
	good := startReplicas(t, m, 1)
	if _, err := NewProxy(context.Background(), m, []string{good[0].URL}, ProxyOptions{Replication: 2}); err == nil {
		t.Fatal("proxy accepted replication 2 over 1 replica")
	}
}

// TestProxyHealthzAndStats checks the proxy's own endpoints: healthz
// carries the manifest's digest (matching the replicas') plus the
// replica count, and stats break upstream traffic out per replica.
func TestProxyHealthzAndStats(t *testing.T) {
	m, replicas, shardVertex := proxyFixture(t)
	_, ts := startProxy(t, m, replicas, ProxyOptions{Replication: 1})
	client := api.New(ts.URL)

	h, err := client.Healthz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rh, err := api.New(replicas[0].URL).Healthz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Kind != "conn" || h.Replicas != 2 ||
		h.Shards != m.NumShards() || h.Digest == "" || h.Digest != rh.Digest {
		t.Fatalf("proxy healthz = %+v (replica digest %q)", h, rh.Digest)
	}

	// One batch touching every shard, then check the counters.
	req := &api.QueryRequest{}
	for _, v := range shardVertex {
		req.Pairs = append(req.Pairs, [2]int32{v, v})
	}
	results, err := client.Connected(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(req.Pairs) {
		t.Fatalf("got %d results for %d pairs", len(results), len(req.Pairs))
	}
	stats, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Kind != "conn" || len(stats.Upstreams) != 2 {
		t.Fatalf("proxy stats = %+v", stats)
	}
	if stats.PairsServed != uint64(len(req.Pairs)) {
		t.Fatalf("pairs served %d, want %d", stats.PairsServed, len(req.Pairs))
	}
	var assigned, fanned uint64
	seen := make(map[int]bool)
	for _, u := range stats.Upstreams {
		assigned += uint64(len(u.Shards))
		fanned += u.Requests
		for _, id := range u.Shards {
			if seen[id] {
				t.Fatalf("shard %d assigned twice at replication 1: %+v", id, stats.Upstreams)
			}
			seen[id] = true
		}
	}
	if assigned != uint64(m.NumShards()) {
		t.Fatalf("placement covers %d of %d shards", assigned, m.NumShards())
	}
	if fanned != uint64(m.NumShards()) {
		t.Fatalf("one batch over every shard fanned %d sub-requests, want %d", fanned, m.NumShards())
	}
	if ep := stats.Endpoints["connected"]; ep.Requests != 1 || ep.Errors != 0 {
		t.Fatalf("connected counters = %+v", ep)
	}
}

// TestProxyMergeBytes spot-checks the merge against the raw monolithic
// bytes for a batch mixing in-shard, cross-component and duplicate
// pairs under a shared fault set — the exact splice path.
func TestProxyMergeBytes(t *testing.T) {
	g := shardMatrixGraph()
	router, err := ftrouting.NewRouter(g, 3, 2, ftrouting.RouterOptions{Seed: 7, Balanced: true})
	if err != nil {
		t.Fatal(err)
	}
	mono := startServer(t, router, Options{})
	m := shardScheme(t, router, ftrouting.ShardOptions{})
	_, proxy := startProxy(t, m, startReplicas(t, m, 2), ProxyOptions{Replication: 2})
	raw := `{"pairs":[[0,5],[6,13],[0,23],[14,22],[0,5],[5,14],[23,23]],"faults":[0,15,15]}`
	for _, endpoint := range []string{"/v1/route", "/v1/route-forbidden"} {
		ms, mb := postRaw(t, mono.URL+endpoint, raw)
		ps, pb := postRaw(t, proxy.URL+endpoint, raw)
		if ms != ps || !bytes.Equal(mb, pb) {
			t.Fatalf("%s: mono %d %s\nproxy %d %s", endpoint, ms, mb, ps, pb)
		}
	}
}
