package serve

// Wire types of the HTTP/JSON API. Requests and responses mirror the
// batch API of the root package exactly: a request is one QueryBatch
// (pairs + fault set), a response carries the batch results in pair
// order, and errors round-trip the batch API's machine-readable codes and
// pair indices in a structured envelope instead of formatted text.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"ftrouting"
)

// QueryRequest is the body of every query endpoint: a pair list and one
// fault set, the wire form of ftrouting.QueryBatch. Duplicate fault ids
// count once toward the fault bound; duplicate pairs are answered
// independently.
type QueryRequest struct {
	// Pairs lists the (source, target) queries as two-element arrays.
	Pairs [][2]int32 `json:"pairs"`
	// Faults lists the failed edge ids; order and duplication are
	// irrelevant (results depend only on the fault set).
	Faults []ftrouting.EdgeID `json:"faults,omitempty"`
}

// batch converts the request to the root package's batch form.
func (q *QueryRequest) batch() ftrouting.QueryBatch {
	pairs := make([]ftrouting.Pair, len(q.Pairs))
	for i, p := range q.Pairs {
		pairs[i] = ftrouting.Pair{S: p[0], T: p[1]}
	}
	return ftrouting.QueryBatch{Pairs: pairs, Faults: q.Faults}
}

// ConnectedResponse answers /v1/connected: one bool per pair, in order.
type ConnectedResponse struct {
	Results []bool `json:"results"`
}

// EstimateResponse answers /v1/estimate: one estimate per pair, in order.
// Disconnected pairs carry the Unreachable sentinel from /v1/healthz.
type EstimateResponse struct {
	Estimates []int64 `json:"estimates"`
}

// RouteResult is the wire form of ftrouting.RouteResult, field for field.
type RouteResult struct {
	Reached       bool    `json:"reached"`
	Cost          int64   `json:"cost"`
	Opt           int64   `json:"opt"`
	Stretch       float64 `json:"stretch"`
	Hops          int     `json:"hops"`
	Probes        int     `json:"probes"`
	Detections    int     `json:"detections"`
	Phases        int     `json:"phases"`
	Iterations    int     `json:"iterations"`
	MaxHeaderBits int     `json:"max_header_bits"`
	ProbeCost     int64   `json:"probe_cost"`
	Trace         []int32 `json:"trace,omitempty"`
}

// fromRouteResult converts a simulation result to its wire form.
func fromRouteResult(r ftrouting.RouteResult) RouteResult {
	return RouteResult{
		Reached:       r.Reached,
		Cost:          r.Cost,
		Opt:           r.Opt,
		Stretch:       r.Stretch,
		Hops:          r.Hops,
		Probes:        r.Probes,
		Detections:    r.Detections,
		Phases:        r.Phases,
		Iterations:    r.Iterations,
		MaxHeaderBits: r.MaxHeaderBits,
		ProbeCost:     r.ProbeCost,
		Trace:         r.Trace,
	}
}

// RouteResponse answers /v1/route and /v1/route-forbidden.
type RouteResponse struct {
	Results []RouteResult `json:"results"`
}

// HealthResponse answers /v1/healthz: static facts about the loaded
// scheme a client needs to form valid requests.
type HealthResponse struct {
	Status string `json:"status"`
	// Kind is the loaded scheme kind: conn, dist or router.
	Kind     string `json:"kind"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	// FaultBound is the scheme's f; -1 means unbounded (sketch labels).
	FaultBound int `json:"fault_bound"`
	// Unreachable is the estimate value of disconnected pairs.
	Unreachable int64 `json:"unreachable"`
	// Components and Shards describe a sharded server's manifest; both are
	// omitted by monolithic servers.
	Components int `json:"components,omitempty"`
	Shards     int `json:"shards,omitempty"`
}

// EndpointStats counts one endpoint's traffic.
type EndpointStats struct {
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
}

// CacheStats reports the prepared-fault-context cache counters. Every
// lookup is exactly one hit or one miss, so Hits+Misses equals the number
// of non-empty query requests that reached fault preparation.
type CacheStats struct {
	Capacity  int    `json:"capacity"`
	Size      int    `json:"size"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// ShardEntryStats reports one shard's lifetime counters (kept across
// evictions) and current residency.
type ShardEntryStats struct {
	ID       int   `json:"id"`
	Resident bool  `json:"resident"`
	Bytes    int64 `json:"bytes"`
	// Loads and Evictions count this shard's cache entries and exits.
	Loads     uint64 `json:"loads"`
	Evictions uint64 `json:"evictions"`
	// ContextHits/ContextMisses count the shard's prepared-fault-context
	// lookups; Contexts is the live context count (0 when not resident).
	ContextHits   uint64 `json:"context_hits"`
	ContextMisses uint64 `json:"context_misses"`
	Contexts      int    `json:"contexts"`
}

// ShardCacheStats reports the resident-shard cache of a sharded server:
// the memory budget, the resident set, and one row per shard.
type ShardCacheStats struct {
	BudgetBytes    int64             `json:"budget_bytes"`
	ResidentBytes  int64             `json:"resident_bytes"`
	ResidentShards int               `json:"resident_shards"`
	TotalShards    int               `json:"total_shards"`
	Loads          uint64            `json:"loads"`
	Evictions      uint64            `json:"evictions"`
	Shards         []ShardEntryStats `json:"shards"`
}

// StatsResponse answers /v1/stats. For sharded servers Cache aggregates
// every shard's prepared-fault-context counters and Shards breaks the
// resident-shard cache out per shard; monolithic servers omit Shards.
type StatsResponse struct {
	Kind        string                   `json:"kind"`
	Endpoints   map[string]EndpointStats `json:"endpoints"`
	PairsServed uint64                   `json:"pairs_served"`
	Cache       CacheStats               `json:"cache"`
	Shards      *ShardCacheStats         `json:"shards,omitempty"`
}

// ErrorInfo is the structured error payload: a stable machine-readable
// code (the ftrouting.ErrorCode values plus the transport-level codes
// below), the human-readable message, and the failing pair index when the
// error is scoped to one pair of the batch.
type ErrorInfo struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	PairIndex *int   `json:"pair_index,omitempty"`
}

// ErrorBody is the envelope of every non-2xx response.
type ErrorBody struct {
	Error ErrorInfo `json:"error"`
}

// Transport-level error codes (validation failures reuse the stable
// ftrouting.ErrorCode values verbatim).
const (
	codeBadRequest       = "bad_request"
	codeRequestTooLarge  = "request_too_large"
	codeMethodNotAllowed = "method_not_allowed"
	codeNotFound         = "not_found"
	codeUnsupported      = "unsupported_endpoint"
	codeInternal         = string(ftrouting.CodeInternal)
)

// apiError pairs an HTTP status with the structured error payload.
type apiError struct {
	status int
	code   string
	msg    string
	pair   int // failing pair index, or -1
}

func (e *apiError) Error() string { return e.msg }

// errorf builds an apiError with no pair scope.
func errorf(status int, code, format string, args ...any) *apiError {
	return &apiError{status: status, code: code, msg: fmt.Sprintf(format, args...), pair: -1}
}

// fromBatchError maps a batch-API error onto an apiError using the stable
// code and pair index the error chain carries — never the message text.
func fromBatchError(err error) *apiError {
	status := http.StatusBadRequest
	code := ftrouting.CodeOf(err)
	if code == ftrouting.CodeInternal {
		status = http.StatusInternalServerError
	}
	return &apiError{status: status, code: string(code), msg: err.Error(), pair: ftrouting.PairIndexOf(err)}
}

// decodeQueryRequest parses a request body of at most maxBytes bytes.
// Unknown fields, trailing data and oversized bodies are rejected; the
// decoder never panics on malformed input (FuzzServeRequest).
func decodeQueryRequest(body io.Reader, maxBytes int64) (*QueryRequest, *apiError) {
	// One spare byte past the limit distinguishes "exactly maxBytes" from
	// "too large" without reading an unbounded body.
	lr := &io.LimitedReader{R: body, N: maxBytes + 1}
	dec := json.NewDecoder(lr)
	dec.DisallowUnknownFields()
	var req QueryRequest
	if err := dec.Decode(&req); err != nil {
		if lr.N <= 0 {
			return nil, errorf(http.StatusRequestEntityTooLarge, codeRequestTooLarge,
				"request body exceeds %d bytes", maxBytes)
		}
		if errors.Is(err, io.EOF) {
			return nil, errorf(http.StatusBadRequest, codeBadRequest, "empty request body")
		}
		return nil, errorf(http.StatusBadRequest, codeBadRequest, "malformed request: %v", err)
	}
	if dec.More() {
		return nil, errorf(http.StatusBadRequest, codeBadRequest, "trailing data after request object")
	}
	if lr.N <= 0 {
		return nil, errorf(http.StatusRequestEntityTooLarge, codeRequestTooLarge,
			"request body exceeds %d bytes", maxBytes)
	}
	return &req, nil
}

// writeJSON renders a 200 response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// writeError renders the structured error envelope.
func writeError(w http.ResponseWriter, e *apiError) {
	info := ErrorInfo{Code: e.code, Message: e.msg}
	if e.pair >= 0 {
		idx := e.pair
		info.PairIndex = &idx
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.status)
	json.NewEncoder(w).Encode(ErrorBody{Error: info})
}
