package serve

// The wire types of the HTTP/JSON API live in the importable serve/api
// package, shared verbatim by every tier (monolithic daemon, shard
// replica, fan-out proxy) and by clients. This file aliases them into
// the serve namespace and keeps the server-side helpers: the internal
// error carrier, request decoding and response rendering.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"ftrouting"
	"ftrouting/serve/api"
)

// Aliases of the shared wire types (see package serve/api for the
// contract each carries).
type (
	QueryRequest      = api.QueryRequest
	ConnectedResponse = api.ConnectedResponse
	EstimateResponse  = api.EstimateResponse
	RouteResult       = api.RouteResult
	RouteResponse     = api.RouteResponse
	HealthResponse    = api.HealthResponse
	EndpointStats     = api.EndpointStats
	CacheStats        = api.CacheStats
	ShardEntryStats   = api.ShardEntryStats
	ShardCacheStats   = api.ShardCacheStats
	UpstreamStats     = api.UpstreamStats
	StatsResponse     = api.StatsResponse
	ErrorInfo         = api.ErrorInfo
	ErrorBody         = api.ErrorBody
)

// Transport-level error codes (validation failures reuse the stable
// ftrouting.ErrorCode values verbatim).
const (
	codeBadRequest       = api.CodeBadRequest
	codeRequestTooLarge  = api.CodeRequestTooLarge
	codeMethodNotAllowed = api.CodeMethodNotAllowed
	codeNotFound         = api.CodeNotFound
	codeUnsupported      = api.CodeUnsupported
	codeInternal         = api.CodeInternal
	codeUpstream         = api.CodeUpstream
)

// fromRouteResult converts a simulation result to its wire form.
func fromRouteResult(r ftrouting.RouteResult) RouteResult { return api.FromRouteResult(r) }

// apiError pairs an HTTP status with the structured error payload.
type apiError struct {
	status int
	code   string
	msg    string
	pair   int // failing pair index, or -1
}

func (e *apiError) Error() string { return e.msg }

// errorf builds an apiError with no pair scope.
func errorf(status int, code, format string, args ...any) *apiError {
	return &apiError{status: status, code: code, msg: fmt.Sprintf(format, args...), pair: -1}
}

// fromBatchError maps a batch-API error onto an apiError using the stable
// code and pair index the error chain carries — never the message text.
func fromBatchError(err error) *apiError {
	status := http.StatusBadRequest
	code := ftrouting.CodeOf(err)
	if code == ftrouting.CodeInternal {
		status = http.StatusInternalServerError
	}
	return &apiError{status: status, code: string(code), msg: err.Error(), pair: ftrouting.PairIndexOf(err)}
}

// fromClientError maps an api.Error a replica answered with back onto an
// apiError, preserving status, code, message and pair scope — the proxy's
// passthrough of an authoritative upstream rejection.
func fromClientError(e *api.Error) *apiError {
	pair := -1
	if e.Info.PairIndex != nil {
		pair = *e.Info.PairIndex
	}
	return &apiError{status: e.Status, code: e.Info.Code, msg: e.Info.Message, pair: pair}
}

// decodeQueryRequest parses a request body of at most maxBytes bytes.
// Unknown fields, trailing data and oversized bodies are rejected; the
// decoder never panics on malformed input (FuzzServeRequest).
func decodeQueryRequest(body io.Reader, maxBytes int64) (*QueryRequest, *apiError) {
	// One spare byte past the limit distinguishes "exactly maxBytes" from
	// "too large" without reading an unbounded body.
	lr := &io.LimitedReader{R: body, N: maxBytes + 1}
	dec := json.NewDecoder(lr)
	dec.DisallowUnknownFields()
	var req QueryRequest
	if err := dec.Decode(&req); err != nil {
		if lr.N <= 0 {
			return nil, errorf(http.StatusRequestEntityTooLarge, codeRequestTooLarge,
				"request body exceeds %d bytes", maxBytes)
		}
		if errors.Is(err, io.EOF) {
			return nil, errorf(http.StatusBadRequest, codeBadRequest, "empty request body")
		}
		return nil, errorf(http.StatusBadRequest, codeBadRequest, "malformed request: %v", err)
	}
	if dec.More() {
		return nil, errorf(http.StatusBadRequest, codeBadRequest, "trailing data after request object")
	}
	if lr.N <= 0 {
		return nil, errorf(http.StatusRequestEntityTooLarge, codeRequestTooLarge,
			"request body exceeds %d bytes", maxBytes)
	}
	return &req, nil
}

// writeJSON renders a 200 response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// writeError renders the structured error envelope.
func writeError(w http.ResponseWriter, e *apiError) {
	info := ErrorInfo{Code: e.code, Message: e.msg}
	if e.pair >= 0 {
		idx := e.pair
		info.PairIndex = &idx
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.status)
	json.NewEncoder(w).Encode(ErrorBody{Error: info})
}
