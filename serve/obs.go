package serve

// The observability layer of a serving tier: per-endpoint request and
// latency instruments, per-stage timings, request tracing and structured
// access logs, shared verbatim by the monolithic daemon, the sharded
// replica and the fan-out proxy. Everything is opt-in — a zero
// Observability keeps a tier byte-for-byte on its uninstrumented
// behavior — and nil-safe, so call sites never branch on whether metrics
// are enabled.

import (
	"context"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"ftrouting/internal/obs"
	"ftrouting/serve/api"
)

// Observability configures the metrics, tracing and structured logging
// of one serving tier. The zero value disables all of it.
type Observability struct {
	// Metrics is the registry the tier's instruments live in; expose it
	// (the server mounts it at GET /metrics) to scrape. Nil disables
	// metrics.
	Metrics *obs.Registry
	// AccessLog emits one structured line per request — trace ID,
	// endpoint, batch shape, status, stage timings, cache outcome. Nil
	// disables access logging.
	AccessLog *slog.Logger
	// LogSample logs every Nth request (0 and 1 log all). Errors are
	// always logged regardless of sampling.
	LogSample int
}

// Serving stage names: the keys of the per-stage histograms, the stats
// stage summaries and the ?debug=timing echo. Each tier reports the
// subset it runs: a monolithic server times decode/context/eval, a
// sharded one adds validate (batch planning), the proxy times
// decode/validate/eval (the fan-out) /merge.
const (
	stageDecode   = "decode"
	stageValidate = "validate"
	stageContext  = "context"
	stageEval     = "eval"
	stageMerge    = "merge"
)

var stageNames = []string{stageDecode, stageValidate, stageContext, stageEval, stageMerge}

// tierObs holds one tier's resolved instruments. A nil *tierObs (the
// zero Observability) disables the whole layer; a tierObs without a
// registry traces and logs but records no metrics. Instrument maps
// resolve missing keys to typed nil instruments, whose methods no-op.
type tierObs struct {
	metrics *obs.Registry
	log     *slog.Logger
	sample  uint64
	logSeq  atomic.Uint64

	pairs    *obs.Counter
	requests map[string]*obs.Counter
	failures map[string]*obs.Counter
	latency  map[string]*obs.Histogram
	stages   map[string]*obs.Histogram

	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	badGateway  *obs.Counter
}

// newTierObs resolves the instruments every tier shares. Returns nil
// when the configuration disables the whole layer.
func newTierObs(o Observability) *tierObs {
	if o.Metrics == nil && o.AccessLog == nil {
		return nil
	}
	t := &tierObs{metrics: o.Metrics, log: o.AccessLog}
	if o.LogSample > 1 {
		t.sample = uint64(o.LogSample)
	}
	m := o.Metrics
	if m == nil {
		return t
	}
	t.pairs = m.Counter("ftroute_pairs_served_total",
		"Pairs answered across all query endpoints.")
	t.requests = make(map[string]*obs.Counter)
	t.failures = make(map[string]*obs.Counter)
	t.latency = make(map[string]*obs.Histogram)
	endpoints := make([]string, 0, len(queryEndpoints)+2)
	for name := range queryEndpoints {
		endpoints = append(endpoints, name)
	}
	endpoints = append(endpoints, "healthz", "stats")
	for _, name := range endpoints {
		l := obs.L("endpoint", name)
		t.requests[name] = m.Counter("ftroute_requests_total",
			"Requests received, by endpoint.", l)
		t.failures[name] = m.Counter("ftroute_request_errors_total",
			"Requests answered with an error envelope, by endpoint.", l)
		t.latency[name] = m.Histogram("ftroute_request_seconds",
			"Request wall time, by endpoint.", l)
	}
	t.stages = make(map[string]*obs.Histogram)
	for _, st := range stageNames {
		t.stages[st] = m.Histogram("ftroute_stage_seconds",
			"Serving stage wall time, by stage.", obs.L("stage", st))
	}
	return t
}

// cacheInstruments registers the prepared-fault-context cache counters
// (servers only; the proxy prepares no contexts).
func (t *tierObs) cacheInstruments() {
	if t == nil || t.metrics == nil {
		return
	}
	t.cacheHits = t.metrics.Counter("ftroute_context_cache_hits_total",
		"Prepared-fault-context cache hits.")
	t.cacheMisses = t.metrics.Counter("ftroute_context_cache_misses_total",
		"Prepared-fault-context cache misses.")
}

// shardInstruments registers the resident-shard cache instruments
// (sharded servers only). All nil when metrics are disabled.
func (t *tierObs) shardInstruments() (load *obs.Histogram, resident *obs.Gauge, evictions *obs.Counter) {
	if t == nil || t.metrics == nil {
		return nil, nil, nil
	}
	return t.metrics.Histogram("ftroute_shard_load_seconds",
			"Shard load wall time (file read and decode)."),
		t.metrics.Gauge("ftroute_shard_resident_bytes",
			"Bytes of resident shards (manifest-recorded file sizes)."),
		t.metrics.Counter("ftroute_shard_evictions_total",
			"Shards evicted from the resident set.")
}

// fetchInstruments registers the shard-store fetch instruments (sharded
// servers only; only observable stores feed them, so local-directory
// serving leaves them at zero). All nil when metrics are disabled.
func (t *tierObs) fetchInstruments() (fetch *obs.Histogram, retries, failures *obs.Counter) {
	if t == nil || t.metrics == nil {
		return nil, nil, nil
	}
	return t.metrics.Histogram("ftroute_shard_fetch_seconds",
			"Shard-store fetch wall time (successful fetches, retries included)."),
		t.metrics.Counter("ftroute_shard_fetch_retries_total",
			"Shard-store fetch attempts that failed and were retried."),
		t.metrics.Counter("ftroute_shard_fetch_failures_total",
			"Shard-store fetches that exhausted their retry budget.")
}

// upstreamInstruments registers one replica's fan-out instruments
// (proxies only), plus the tier-wide bad-gateway counter. All nil when
// metrics are disabled.
func (t *tierObs) upstreamInstruments(replica string) (lat *obs.Histogram, errs, failovers *obs.Counter) {
	if t == nil || t.metrics == nil {
		return nil, nil, nil
	}
	t.badGateway = t.metrics.Counter("ftroute_upstream_bad_gateway_total",
		"Sub-batches whose every assigned replica failed (HTTP 502).")
	l := obs.L("replica", replica)
	return t.metrics.Histogram("ftroute_upstream_seconds",
			"Upstream sub-request wall time, by replica (failed attempts included).", l),
		t.metrics.Counter("ftroute_upstream_errors_total",
			"Structured rejections answered by the replica.", l),
		t.metrics.Counter("ftroute_upstream_failovers_total",
			"Transport-level failures that moved a sub-batch off the replica.", l)
}

// badGatewayInc counts one exhausted-assignment sub-batch.
func (t *tierObs) badGatewayInc() {
	if t == nil {
		return
	}
	t.badGateway.Inc()
}

// metricsHandler returns the GET /metrics handler, or nil when metrics
// are disabled.
func (t *tierObs) metricsHandler() http.Handler {
	if t == nil || t.metrics == nil {
		return nil
	}
	return t.metrics.Handler()
}

// latencySummaries condenses the per-endpoint latency histograms for
// /v1/stats. Nil when metrics are disabled or nothing was served, so the
// stats body stays exactly its pre-instrumentation shape.
func (t *tierObs) latencySummaries() map[string]api.LatencySummary {
	if t == nil || t.metrics == nil {
		return nil
	}
	out := make(map[string]api.LatencySummary)
	for name, h := range t.latency {
		s := h.Snapshot()
		if s.Count() == 0 {
			continue
		}
		out[name] = api.LatencySummary{
			Count:     s.Count(),
			MeanNanos: int64(s.Mean()),
			P50Nanos:  int64(s.Quantile(0.5)),
			P99Nanos:  int64(s.Quantile(0.99)),
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// stageSummaries condenses the per-stage histograms for /v1/stats.
func (t *tierObs) stageSummaries() map[string]api.StageSummary {
	if t == nil || t.metrics == nil {
		return nil
	}
	out := make(map[string]api.StageSummary)
	for name, h := range t.stages {
		s := h.Snapshot()
		if s.Count() == 0 {
			continue
		}
		out[name] = api.StageSummary{Count: s.Count(), MeanNanos: int64(s.Mean())}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// reqObs tracks one in-flight request: its trace ID, start time, batch
// shape, stage timings and cache outcome. A nil *reqObs (observability
// disabled) makes every method a no-op, so the request pipeline calls
// them unconditionally.
type reqObs struct {
	t        *tierObs
	endpoint string
	trace    string
	debug    bool
	start    time.Time
	pairs    int
	faults   int
	cache    string // "hit", "miss" or "" (no context lookup ran)
	stages   []api.StageTiming
	// upstreams collects the proxy's per-sub-batch fan-out timings,
	// appended after the fan-out joins (never concurrently).
	upstreams []api.UpstreamTiming
}

// begin opens one request's observation: honor a well-formed
// X-Ftroute-Trace (the edge mints a fresh ID otherwise) and latch the
// ?debug=timing opt-in. Returns nil — observing nothing — on a nil tier.
func (t *tierObs) begin(r *http.Request, endpoint string) *reqObs {
	if t == nil {
		return nil
	}
	ro := &reqObs{t: t, endpoint: endpoint, start: time.Now()}
	if tr := obs.SanitizeTraceID(r.Header.Get(api.TraceHeader)); tr != "" {
		ro.trace = tr
	} else {
		ro.trace = obs.NewTraceID()
	}
	if r.URL.RawQuery != "" && r.URL.Query().Get(api.DebugTimingParam) == api.DebugTimingValue {
		ro.debug = true
	}
	return ro
}

// now stamps a stage start (the zero time when observation is off, so
// the disabled path never calls time.Now).
func (ro *reqObs) now() time.Time {
	if ro == nil {
		return time.Time{}
	}
	return time.Now()
}

// stage records one completed serving stage.
func (ro *reqObs) stage(name string, start time.Time) {
	if ro == nil {
		return
	}
	d := time.Since(start)
	ro.t.stages[name].Observe(d)
	ro.stages = append(ro.stages, api.StageTiming{Stage: name, Nanos: int64(d)})
}

// setBatch records the decoded batch shape for metrics and the log line.
func (ro *reqObs) setBatch(pairs, faults int) {
	if ro == nil {
		return
	}
	ro.pairs, ro.faults = pairs, faults
}

// cacheResult records one prepared-fault-context lookup. A sharded batch
// looks up once per touched shard; the logged outcome is "hit" only when
// every lookup hit.
func (ro *reqObs) cacheResult(hit bool) {
	if ro == nil {
		return
	}
	if hit {
		ro.t.cacheHits.Inc()
		if ro.cache == "" {
			ro.cache = "hit"
		}
	} else {
		ro.t.cacheMisses.Inc()
		ro.cache = "miss"
	}
}

// addUpstream records one fan-out sub-request's timing (proxy only;
// called after the fan-out joins).
func (ro *reqObs) addUpstream(u api.UpstreamTiming) {
	if ro == nil {
		return
	}
	ro.upstreams = append(ro.upstreams, u)
}

// timing builds the ?debug=timing echo, nil unless the request opted in
// — so instrumented responses stay byte-identical to uninstrumented
// ones.
func (ro *reqObs) timing() *api.Timing {
	if ro == nil || !ro.debug {
		return nil
	}
	return &api.Timing{
		Trace:      ro.trace,
		TotalNanos: int64(time.Since(ro.start)),
		Stages:     ro.stages,
		Upstreams:  ro.upstreams,
	}
}

// attachTiming grafts a timing echo onto a query payload. A nil echo
// returns the payload untouched.
func attachTiming(payload any, t *api.Timing) any {
	if t == nil {
		return payload
	}
	switch v := payload.(type) {
	case ConnectedResponse:
		v.Timing = t
		return v
	case EstimateResponse:
		v.Timing = t
		return v
	case RouteResponse:
		v.Timing = t
		return v
	}
	return payload
}

// finish closes one request's observation: latency and traffic
// instruments, then the sampled access-log line.
func (ro *reqObs) finish(e *apiError) {
	if ro == nil {
		return
	}
	t := ro.t
	total := time.Since(ro.start)
	t.requests[ro.endpoint].Inc()
	t.latency[ro.endpoint].Observe(total)
	status := http.StatusOK
	if e != nil {
		t.failures[ro.endpoint].Inc()
		status = e.status
	} else if ro.pairs > 0 {
		t.pairs.Add(uint64(ro.pairs))
	}
	if t.log == nil || (e == nil && !t.sampled()) {
		return
	}
	// Client errors log at warn and server-side failures at error, so
	// -log-level warn keeps only failing requests.
	lvl := slog.LevelInfo
	switch {
	case status >= 500:
		lvl = slog.LevelError
	case status >= 400:
		lvl = slog.LevelWarn
	}
	if !t.log.Enabled(context.Background(), lvl) {
		return
	}
	attrs := make([]slog.Attr, 0, 8+len(ro.stages))
	attrs = append(attrs,
		slog.String("trace", ro.trace),
		slog.String("endpoint", ro.endpoint),
		slog.Int("status", status),
		slog.Int("pairs", ro.pairs),
		slog.Int("faults", ro.faults),
		slog.Int64("total_ns", int64(total)),
	)
	if ro.cache != "" {
		attrs = append(attrs, slog.String("cache", ro.cache))
	}
	for _, st := range ro.stages {
		attrs = append(attrs, slog.Int64(st.Stage+"_ns", st.Nanos))
	}
	if e != nil {
		attrs = append(attrs, slog.String("code", e.code))
	}
	t.log.LogAttrs(context.Background(), lvl, "request", attrs...)
}

// sampled applies the access-log sampling: every Nth request logs.
func (t *tierObs) sampled() bool {
	if t.sample <= 1 {
		return true
	}
	return t.logSeq.Add(1)%t.sample == 1
}

// instrumented wraps one endpoint handler with the full per-request
// pipeline both tiers share: legacy endpoint counters, request
// observation, error-envelope rendering, instruments and the access-log
// line.
func instrumented(t *tierObs, counters map[string]*endpointCounters, name string,
	h func(http.ResponseWriter, *http.Request, *reqObs) *apiError) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		c := counters[name]
		c.requests.Add(1)
		ro := t.begin(r, name)
		e := h(w, r, ro)
		if e != nil {
			c.errors.Add(1)
			writeError(w, e)
		}
		ro.finish(e)
	}
}
