package api

// Client option tests: transport failures retry up to the WithRetry
// budget, structured server rejections (*Error) are authoritative and
// never retried, WithTimeout bounds one attempt, and the trace header
// rides every attempt by default.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// flakyTransport fails the first n round-trips with a transport error,
// then delegates to the real transport.
type flakyTransport struct {
	mu    sync.Mutex
	fails int
	calls int
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	f.calls++
	fail := f.calls <= f.fails
	f.mu.Unlock()
	if fail {
		return nil, fmt.Errorf("injected transport failure %d", f.calls)
	}
	return http.DefaultTransport.RoundTrip(req)
}

func TestClientRetriesTransportFailures(t *testing.T) {
	var traces []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		traces = append(traces, r.Header.Get(TraceHeader))
		fmt.Fprint(w, `{"results":[true]}`)
	}))
	defer ts.Close()
	ft := &flakyTransport{fails: 2}
	c := New(ts.URL,
		WithHTTPClient(&http.Client{Transport: ft}),
		WithRetry(3))
	c.backoff = time.Microsecond
	ctx := WithTrace(context.Background(), "trace-123")
	got, err := c.Connected(ctx, &QueryRequest{Pairs: [][2]int32{{0, 1}}})
	if err != nil || len(got) != 1 || !got[0] {
		t.Fatalf("Connected after flaky transport: %v %v", got, err)
	}
	if ft.calls != 3 {
		t.Fatalf("attempts = %d, want 3 (2 failures + success)", ft.calls)
	}
	// The surviving attempt carried the trace header (default-on).
	if len(traces) != 1 || traces[0] != "trace-123" {
		t.Fatalf("traces = %v", traces)
	}
}

func TestClientRetryBudgetBounded(t *testing.T) {
	ft := &flakyTransport{fails: 100}
	c := New("http://127.0.0.1:1",
		WithHTTPClient(&http.Client{Transport: ft}),
		WithRetry(2))
	c.backoff = time.Microsecond
	if _, err := c.Connected(context.Background(), &QueryRequest{}); err == nil {
		t.Fatal("dead transport accepted")
	}
	if ft.calls != 3 {
		t.Fatalf("attempts = %d, want 1+2", ft.calls)
	}
	// Without WithRetry there is exactly one attempt.
	ft2 := &flakyTransport{fails: 100}
	c2 := New("http://127.0.0.1:1", WithHTTPClient(&http.Client{Transport: ft2}))
	if _, err := c2.Connected(context.Background(), &QueryRequest{}); err == nil {
		t.Fatal("dead transport accepted")
	}
	if ft2.calls != 1 {
		t.Fatalf("attempts without WithRetry = %d", ft2.calls)
	}
}

func TestClientNeverRetriesServerErrors(t *testing.T) {
	var mu sync.Mutex
	requests := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		requests++
		mu.Unlock()
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":{"code":"bad_vertex","message":"nope"}}`)
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetry(5))
	c.backoff = time.Microsecond
	_, err := c.Connected(context.Background(), &QueryRequest{})
	var se *Error
	if !errors.As(err, &se) || se.Status != http.StatusBadRequest || se.Info.Code != "bad_vertex" {
		t.Fatalf("server rejection: %v", err)
	}
	if requests != 1 {
		t.Fatalf("authoritative rejection retried: %d requests", requests)
	}
}

func TestClientPerAttemptTimeout(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer ts.Close()
	defer close(release)
	c := New(ts.URL, WithTimeout(30*time.Millisecond))
	start := time.Now()
	if _, err := c.Connected(context.Background(), &QueryRequest{}); err == nil {
		t.Fatal("stalled server answered")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("timeout took %v", d)
	}
}

func TestClientDeprecatedConstructor(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"results":[false]}`)
	}))
	defer ts.Close()
	got, err := NewClient(ts.URL, nil).Connected(context.Background(), &QueryRequest{})
	if err != nil || len(got) != 1 || got[0] {
		t.Fatalf("NewClient path: %v %v", got, err)
	}
}
