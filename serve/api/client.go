package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Error is a structured error a server answered with: the HTTP status
// plus the decoded envelope. A *Error is authoritative — the upstream
// received the request and rejected it — as opposed to the plain errors
// Client returns for transport failures (connection refused, truncated
// or non-JSON bodies), which a fan-out tier may retry on another
// replica.
type Error struct {
	Status int
	Info   ErrorInfo
}

func (e *Error) Error() string {
	return fmt.Sprintf("server error %d (%s): %s", e.Status, e.Info.Code, e.Info.Message)
}

// defaultRetryBackoff is the delay before a retried request; each
// further retry doubles it.
const defaultRetryBackoff = 50 * time.Millisecond

// Client is the typed client of the serving API. Every tier — monolithic
// daemon, shard-affine replica, fan-out proxy — speaks the same
// protocol, so one client talks to any of them. Trace propagation is on
// by default: a trace ID installed with WithTrace on the request
// context rides the X-Ftroute-Trace header of every call.
type Client struct {
	base    string
	hc      *http.Client
	timeout time.Duration
	retries int
	backoff time.Duration
}

// Option configures a Client (New).
type Option func(*Client)

// WithHTTPClient issues requests through hc instead of
// http.DefaultClient. A nil hc keeps the default.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) {
		if hc != nil {
			c.hc = hc
		}
	}
}

// WithTimeout bounds each request attempt (not the whole retried call)
// by d, layered onto whatever deadline the caller's context carries.
// Zero or negative keeps attempts unbounded.
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.timeout = d }
}

// WithRetry retries transport-level failures — refused connections,
// timeouts, unstructured bodies — up to retries extra attempts, backing
// off exponentially between them. Structured server rejections (*Error)
// are authoritative and never retried; a fan-out tier fails them over
// to another replica instead. Zero or negative disables retrying (the
// default).
func WithRetry(retries int) Option {
	return func(c *Client) { c.retries = retries }
}

// New returns a client for the server at baseURL (scheme + host, e.g.
// "http://127.0.0.1:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:    strings.TrimRight(baseURL, "/"),
		hc:      http.DefaultClient,
		backoff: defaultRetryBackoff,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// NewClient is the pre-options constructor.
//
// Deprecated: use New with WithHTTPClient.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	return New(baseURL, WithHTTPClient(httpClient))
}

// BaseURL returns the server address the client was built with.
func (c *Client) BaseURL() string { return c.base }

// decodeResponse classifies one HTTP exchange: 2xx bodies decode into
// out, non-2xx bodies must carry the structured envelope and become a
// *Error. Anything else — a non-2xx body that does not decode to an
// envelope — is a transport-level failure.
func decodeResponse(resp *http.Response, out any) error {
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("api: reading response: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		var eb ErrorBody
		if err := json.Unmarshal(body, &eb); err == nil && eb.Error.Code != "" {
			return &Error{Status: resp.StatusCode, Info: eb.Error}
		}
		return fmt.Errorf("api: server returned status %d with unstructured body", resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("api: decoding response: %w", err)
	}
	return nil
}

// Query posts req to the named query endpoint (connected, estimate,
// route, route-forbidden) and decodes the 2xx body into out. Structured
// server rejections return a *Error; transport failures return plain
// errors (retried per WithRetry — every query endpoint is idempotent).
func (c *Client) Query(ctx context.Context, endpoint string, req *QueryRequest, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("api: encoding request: %w", err)
	}
	url := c.base + "/v1/" + endpoint
	if DebugTimingFrom(ctx) {
		url += "?" + DebugTimingParam + "=" + DebugTimingValue
	}
	return c.do(ctx, http.MethodPost, url, body, out)
}

// get fetches one GET endpoint into out.
func (c *Client) get(ctx context.Context, endpoint string, out any) error {
	return c.do(ctx, http.MethodGet, c.base+"/v1/"+endpoint, nil, out)
}

// do runs one call: per-attempt timeout, trace header, and the
// transport-failure retry loop. A *Error ends the loop immediately — the
// server received and rejected the request, so another attempt would be
// rejected identically.
func (c *Client) do(ctx context.Context, method, url string, body []byte, out any) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		lastErr = c.doOnce(ctx, method, url, body, out)
		var se *Error
		if lastErr == nil || errors.As(lastErr, &se) {
			return lastErr
		}
		if attempt >= c.retries || ctx.Err() != nil {
			return lastErr
		}
		select {
		case <-time.After(c.backoff << uint(attempt)):
		case <-ctx.Done():
			return lastErr
		}
	}
}

// doOnce runs one HTTP attempt under the per-attempt timeout.
func (c *Client) doOnce(ctx context.Context, method, url string, body []byte, out any) error {
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	var br io.Reader
	if body != nil {
		br = bytes.NewReader(body)
	}
	hreq, err := http.NewRequestWithContext(ctx, method, url, br)
	if err != nil {
		return fmt.Errorf("api: building request: %w", err)
	}
	if body != nil {
		hreq.Header.Set("Content-Type", "application/json")
	}
	if t := TraceFrom(ctx); t != "" {
		hreq.Header.Set(TraceHeader, t)
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return fmt.Errorf("api: %w", err)
	}
	defer resp.Body.Close()
	return decodeResponse(resp, out)
}

// Connected answers /v1/connected: one bool per pair, in order.
func (c *Client) Connected(ctx context.Context, req *QueryRequest) ([]bool, error) {
	var resp ConnectedResponse
	if err := c.Query(ctx, "connected", req, &resp); err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// Estimate answers /v1/estimate: one estimate per pair, in order.
func (c *Client) Estimate(ctx context.Context, req *QueryRequest) ([]int64, error) {
	var resp EstimateResponse
	if err := c.Query(ctx, "estimate", req, &resp); err != nil {
		return nil, err
	}
	return resp.Estimates, nil
}

// Route answers /v1/route: one unknown-fault routing result per pair.
func (c *Client) Route(ctx context.Context, req *QueryRequest) ([]RouteResult, error) {
	var resp RouteResponse
	if err := c.Query(ctx, "route", req, &resp); err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// RouteForbidden answers /v1/route-forbidden: one known-fault routing
// result per pair.
func (c *Client) RouteForbidden(ctx context.Context, req *QueryRequest) ([]RouteResult, error) {
	var resp RouteResponse
	if err := c.Query(ctx, "route-forbidden", req, &resp); err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// Healthz fetches /v1/healthz.
func (c *Client) Healthz(ctx context.Context) (*HealthResponse, error) {
	var resp HealthResponse
	if err := c.get(ctx, "healthz", &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches /v1/stats.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	var resp StatsResponse
	if err := c.get(ctx, "stats", &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
