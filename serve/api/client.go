package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Error is a structured error a server answered with: the HTTP status
// plus the decoded envelope. A *Error is authoritative — the upstream
// received the request and rejected it — as opposed to the plain errors
// Client returns for transport failures (connection refused, truncated
// or non-JSON bodies), which a fan-out tier may retry on another
// replica.
type Error struct {
	Status int
	Info   ErrorInfo
}

func (e *Error) Error() string {
	return fmt.Sprintf("server error %d (%s): %s", e.Status, e.Info.Code, e.Info.Message)
}

// Client is the typed client of the serving API. Every tier — monolithic
// daemon, shard-affine replica, fan-out proxy — speaks the same
// protocol, so one client talks to any of them.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the server at baseURL (scheme + host,
// e.g. "http://127.0.0.1:8080"). A nil httpClient uses
// http.DefaultClient.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: httpClient}
}

// BaseURL returns the server address the client was built with.
func (c *Client) BaseURL() string { return c.base }

// decodeResponse classifies one HTTP exchange: 2xx bodies decode into
// out, non-2xx bodies must carry the structured envelope and become a
// *Error. Anything else — a non-2xx body that does not decode to an
// envelope — is a transport-level failure.
func decodeResponse(resp *http.Response, out any) error {
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("api: reading response: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		var eb ErrorBody
		if err := json.Unmarshal(body, &eb); err == nil && eb.Error.Code != "" {
			return &Error{Status: resp.StatusCode, Info: eb.Error}
		}
		return fmt.Errorf("api: server returned status %d with unstructured body", resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("api: decoding response: %w", err)
	}
	return nil
}

// Query posts req to the named query endpoint (connected, estimate,
// route, route-forbidden) and decodes the 2xx body into out. Structured
// server rejections return a *Error; transport failures return plain
// errors.
func (c *Client) Query(ctx context.Context, endpoint string, req *QueryRequest, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("api: encoding request: %w", err)
	}
	url := c.base + "/v1/" + endpoint
	if DebugTimingFrom(ctx) {
		url += "?" + DebugTimingParam + "=" + DebugTimingValue
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("api: building request: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if t := TraceFrom(ctx); t != "" {
		hreq.Header.Set(TraceHeader, t)
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return fmt.Errorf("api: %w", err)
	}
	defer resp.Body.Close()
	return decodeResponse(resp, out)
}

// get fetches one GET endpoint into out.
func (c *Client) get(ctx context.Context, endpoint string, out any) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/"+endpoint, nil)
	if err != nil {
		return fmt.Errorf("api: building request: %w", err)
	}
	if t := TraceFrom(ctx); t != "" {
		hreq.Header.Set(TraceHeader, t)
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return fmt.Errorf("api: %w", err)
	}
	defer resp.Body.Close()
	return decodeResponse(resp, out)
}

// Connected answers /v1/connected: one bool per pair, in order.
func (c *Client) Connected(ctx context.Context, req *QueryRequest) ([]bool, error) {
	var resp ConnectedResponse
	if err := c.Query(ctx, "connected", req, &resp); err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// Estimate answers /v1/estimate: one estimate per pair, in order.
func (c *Client) Estimate(ctx context.Context, req *QueryRequest) ([]int64, error) {
	var resp EstimateResponse
	if err := c.Query(ctx, "estimate", req, &resp); err != nil {
		return nil, err
	}
	return resp.Estimates, nil
}

// Route answers /v1/route: one unknown-fault routing result per pair.
func (c *Client) Route(ctx context.Context, req *QueryRequest) ([]RouteResult, error) {
	var resp RouteResponse
	if err := c.Query(ctx, "route", req, &resp); err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// RouteForbidden answers /v1/route-forbidden: one known-fault routing
// result per pair.
func (c *Client) RouteForbidden(ctx context.Context, req *QueryRequest) ([]RouteResult, error) {
	var resp RouteResponse
	if err := c.Query(ctx, "route-forbidden", req, &resp); err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// Healthz fetches /v1/healthz.
func (c *Client) Healthz(ctx context.Context) (*HealthResponse, error) {
	var resp HealthResponse
	if err := c.get(ctx, "healthz", &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches /v1/stats.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	var resp StatsResponse
	if err := c.get(ctx, "stats", &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
