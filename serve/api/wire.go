// Package api holds the wire types and typed Go client of the serving
// HTTP/JSON API. Every tier speaks exactly this protocol — a monolithic
// daemon, a shard-affine replica and a fan-out proxy answer the same
// QueryRequest with byte-identical bodies — so the package is the one
// place the contract lives: servers (package serve) import it to encode,
// clients (the proxy fan-out, the e2e suites, smoke comparisons) import
// it to decode.
//
// Requests and responses mirror the batch API of the root package
// exactly: a request is one QueryBatch (pairs + fault set), a response
// carries the batch results in pair order, and errors round-trip the
// batch API's machine-readable codes and pair indices in a structured
// envelope instead of formatted text.
package api

import (
	"ftrouting"
)

// QueryRequest is the body of every query endpoint: a pair list and one
// fault set, the wire form of ftrouting.QueryBatch. Duplicate fault ids
// count once toward the fault bound; duplicate pairs are answered
// independently.
type QueryRequest struct {
	// Pairs lists the (source, target) queries as two-element arrays.
	Pairs [][2]int32 `json:"pairs"`
	// Faults lists the failed edge ids; order and duplication are
	// irrelevant (results depend only on the fault set).
	Faults []ftrouting.EdgeID `json:"faults,omitempty"`
}

// Batch converts the request to the root package's batch form.
func (q *QueryRequest) Batch() ftrouting.QueryBatch {
	pairs := make([]ftrouting.Pair, len(q.Pairs))
	for i, p := range q.Pairs {
		pairs[i] = ftrouting.Pair{S: p[0], T: p[1]}
	}
	return ftrouting.QueryBatch{Pairs: pairs, Faults: q.Faults}
}

// FromBatch converts a root-package batch to its wire form.
func FromBatch(b ftrouting.QueryBatch) *QueryRequest {
	req := &QueryRequest{Pairs: make([][2]int32, len(b.Pairs)), Faults: b.Faults}
	for i, p := range b.Pairs {
		req.Pairs[i] = [2]int32{p.S, p.T}
	}
	return req
}

// TraceHeader carries the request trace ID. The edge tier mints one when
// the caller does not supply it, every tier logs it, and the proxy
// forwards it on each sub-batch fan-out.
const TraceHeader = "X-Ftroute-Trace"

// DebugTimingParam and DebugTimingValue form the ?debug=timing query
// parameter that opts a request into the per-stage timing echo.
const (
	DebugTimingParam = "debug"
	DebugTimingValue = "timing"
)

// StageTiming reports one named serving stage's wall time.
type StageTiming struct {
	Stage string `json:"stage"`
	Nanos int64  `json:"nanos"`
}

// UpstreamTiming reports one proxy sub-batch: which shard group went to
// which replica, the upstream call's wall time, and the replica's own
// echoed breakdown (nested again for stacked proxies).
type UpstreamTiming struct {
	Shard   int     `json:"shard"`
	Replica string  `json:"replica"`
	Nanos   int64   `json:"nanos"`
	Timing  *Timing `json:"timing,omitempty"`
}

// Timing is the opt-in (?debug=timing) per-request breakdown echoed in
// the response envelope. It is absent unless requested, so instrumented
// responses stay byte-identical to uninstrumented ones.
type Timing struct {
	Trace      string           `json:"trace,omitempty"`
	TotalNanos int64            `json:"total_nanos"`
	Stages     []StageTiming    `json:"stages,omitempty"`
	Upstreams  []UpstreamTiming `json:"upstreams,omitempty"`
}

// ConnectedResponse answers /v1/connected: one bool per pair, in order.
type ConnectedResponse struct {
	Results []bool  `json:"results"`
	Timing  *Timing `json:"timing,omitempty"`
}

// EstimateResponse answers /v1/estimate: one estimate per pair, in order.
// Disconnected pairs carry the Unreachable sentinel from /v1/healthz.
type EstimateResponse struct {
	Estimates []int64 `json:"estimates"`
	Timing    *Timing `json:"timing,omitempty"`
}

// RouteResult is the wire form of ftrouting.RouteResult, field for field.
type RouteResult struct {
	Reached       bool    `json:"reached"`
	Cost          int64   `json:"cost"`
	Opt           int64   `json:"opt"`
	Stretch       float64 `json:"stretch"`
	Hops          int     `json:"hops"`
	Probes        int     `json:"probes"`
	Detections    int     `json:"detections"`
	Phases        int     `json:"phases"`
	Iterations    int     `json:"iterations"`
	MaxHeaderBits int     `json:"max_header_bits"`
	ProbeCost     int64   `json:"probe_cost"`
	Trace         []int32 `json:"trace,omitempty"`
}

// FromRouteResult converts a simulation result to its wire form.
func FromRouteResult(r ftrouting.RouteResult) RouteResult {
	return RouteResult{
		Reached:       r.Reached,
		Cost:          r.Cost,
		Opt:           r.Opt,
		Stretch:       r.Stretch,
		Hops:          r.Hops,
		Probes:        r.Probes,
		Detections:    r.Detections,
		Phases:        r.Phases,
		Iterations:    r.Iterations,
		MaxHeaderBits: r.MaxHeaderBits,
		ProbeCost:     r.ProbeCost,
		Trace:         r.Trace,
	}
}

// RouteResponse answers /v1/route and /v1/route-forbidden.
type RouteResponse struct {
	Results []RouteResult `json:"results"`
	Timing  *Timing       `json:"timing,omitempty"`
}

// HealthResponse answers /v1/healthz: static facts about the loaded
// scheme a client needs to form valid requests, plus the identity a
// fan-out tier needs to verify before taking traffic.
type HealthResponse struct {
	Status string `json:"status"`
	// Kind is the loaded scheme kind: conn, dist or router.
	Kind     string `json:"kind"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	// FaultBound is the scheme's f; -1 means unbounded (sketch labels).
	FaultBound int `json:"fault_bound"`
	// Unreachable is the estimate value of disconnected pairs.
	Unreachable int64 `json:"unreachable"`
	// Digest is the scheme digest (8 hex digits): the CRC32-C of the
	// scheme kind, parameters and global topology. Identical for a
	// monolithic scheme file and every sharding of it, so a proxy can
	// reject an upstream serving a foreign or incompatible build.
	Digest string `json:"digest,omitempty"`
	// Components and Shards describe a sharded server's manifest; both are
	// omitted by monolithic servers.
	Components int `json:"components,omitempty"`
	Shards     int `json:"shards,omitempty"`
	// Replicas is the upstream count of a proxy; omitted by servers that
	// answer from a local scheme.
	Replicas int `json:"replicas,omitempty"`
}

// EndpointStats counts one endpoint's traffic.
type EndpointStats struct {
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
}

// CacheStats reports the prepared-fault-context cache counters. Every
// lookup is exactly one hit or one miss, so Hits+Misses equals the number
// of non-empty query requests that reached fault preparation.
type CacheStats struct {
	Capacity  int    `json:"capacity"`
	Size      int    `json:"size"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// ShardEntryStats reports one shard's lifetime counters (kept across
// evictions) and current residency.
type ShardEntryStats struct {
	ID       int   `json:"id"`
	Resident bool  `json:"resident"`
	Bytes    int64 `json:"bytes"`
	// Loads and Evictions count this shard's cache entries and exits.
	Loads     uint64 `json:"loads"`
	Evictions uint64 `json:"evictions"`
	// ContextHits/ContextMisses/ContextEvictions count the shard's
	// prepared-fault-context lookups and LRU evictions (kept across shard
	// evictions, so per-row sums reconcile with the aggregate "cache"
	// block); Contexts is the live context count (0 when not resident).
	ContextHits      uint64 `json:"context_hits"`
	ContextMisses    uint64 `json:"context_misses"`
	ContextEvictions uint64 `json:"context_evictions"`
	Contexts         int    `json:"contexts"`
}

// ShardCacheStats reports the resident-shard cache of a sharded server:
// the memory budget, the resident set, and one row per shard.
type ShardCacheStats struct {
	BudgetBytes    int64  `json:"budget_bytes"`
	ResidentBytes  int64  `json:"resident_bytes"`
	ResidentShards int    `json:"resident_shards"`
	TotalShards    int    `json:"total_shards"`
	Loads          uint64 `json:"loads"`
	Evictions      uint64 `json:"evictions"`
	// Fetches, FetchRetries and FetchFailures count the shard store's
	// remote traffic: completed fetches, retried attempts, and fetches
	// that exhausted their retry budget. Only observable stores (the
	// HTTP backend) report them; local-directory serving omits all
	// three, keeping its stats body on its pre-remote shape.
	Fetches       uint64            `json:"fetches,omitempty"`
	FetchRetries  uint64            `json:"fetch_retries,omitempty"`
	FetchFailures uint64            `json:"fetch_failures,omitempty"`
	Shards        []ShardEntryStats `json:"shards"`
}

// UpstreamStats reports one proxy upstream's traffic: the sub-batches it
// answered, the structured errors it returned, and the transport-level
// failures that sent its sub-batches to another replica.
type UpstreamStats struct {
	Replica  string `json:"replica"`
	Shards   []int  `json:"shards"`
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
	Failures uint64 `json:"failures"`
}

// LatencySummary condenses one request-latency histogram: the request
// count, the mean, and interpolated quantiles, all in nanoseconds.
type LatencySummary struct {
	Count     uint64 `json:"count"`
	MeanNanos int64  `json:"mean_nanos"`
	P50Nanos  int64  `json:"p50_nanos"`
	P99Nanos  int64  `json:"p99_nanos"`
}

// StageSummary condenses one serving stage's timing histogram.
type StageSummary struct {
	Count     uint64 `json:"count"`
	MeanNanos int64  `json:"mean_nanos"`
}

// StatsResponse answers /v1/stats. For sharded servers Cache aggregates
// every shard's prepared-fault-context counters and Shards breaks the
// resident-shard cache out per shard; monolithic servers omit Shards.
// Proxies report one Upstreams row per replica and omit the local cache
// blocks. Latency (per endpoint) and Stages (per serving stage) summarize
// the live latency histograms; both are omitted when metrics are
// disabled, keeping the pre-instrumentation body unchanged.
type StatsResponse struct {
	Kind        string                    `json:"kind"`
	Endpoints   map[string]EndpointStats  `json:"endpoints"`
	PairsServed uint64                    `json:"pairs_served"`
	Cache       CacheStats                `json:"cache"`
	Shards      *ShardCacheStats          `json:"shards,omitempty"`
	Upstreams   []UpstreamStats           `json:"upstreams,omitempty"`
	Latency     map[string]LatencySummary `json:"latency,omitempty"`
	Stages      map[string]StageSummary   `json:"stages,omitempty"`
}

// ErrorInfo is the structured error payload: a stable machine-readable
// code (the ftrouting.ErrorCode values plus the transport-level codes
// below), the human-readable message, and the failing pair index when the
// error is scoped to one pair of the batch.
type ErrorInfo struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	PairIndex *int   `json:"pair_index,omitempty"`
}

// ErrorBody is the envelope of every non-2xx response.
type ErrorBody struct {
	Error ErrorInfo `json:"error"`
}

// Transport-level error codes (validation failures reuse the stable
// ftrouting.ErrorCode values verbatim).
const (
	CodeBadRequest       = "bad_request"
	CodeRequestTooLarge  = "request_too_large"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeNotFound         = "not_found"
	CodeUnsupported      = "unsupported_endpoint"
	CodeInternal         = string(ftrouting.CodeInternal)
	// CodeUpstream reports a proxy sub-batch whose every assigned replica
	// failed at the transport level (HTTP 502).
	CodeUpstream = "upstream_failure"
)
