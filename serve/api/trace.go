package api

// Context-carried request options. Threading trace IDs and the debug
// timing opt-in through the context keeps every Client method signature
// stable: the proxy fan-out, e2e suites and CLI all keep calling
// Query/Connected/... unchanged, and opt in per request with WithTrace /
// WithDebugTiming.

import "context"

type ctxKey int

const (
	traceKey ctxKey = iota
	debugTimingKey
)

// WithTrace returns a context carrying trace; the client stamps it on
// outgoing requests as the X-Ftroute-Trace header. An empty trace leaves
// the context unchanged.
func WithTrace(ctx context.Context, trace string) context.Context {
	if trace == "" {
		return ctx
	}
	return context.WithValue(ctx, traceKey, trace)
}

// TraceFrom extracts the trace ID carried by WithTrace ("" if none).
func TraceFrom(ctx context.Context) string {
	t, _ := ctx.Value(traceKey).(string)
	return t
}

// WithDebugTiming returns a context that opts outgoing query requests
// into the ?debug=timing per-stage breakdown echo.
func WithDebugTiming(ctx context.Context) context.Context {
	return context.WithValue(ctx, debugTimingKey, true)
}

// DebugTimingFrom reports whether ctx carries the debug-timing opt-in.
func DebugTimingFrom(ctx context.Context) bool {
	d, _ := ctx.Value(debugTimingKey).(bool)
	return d
}
