package serve

// Unit tests of the fault-context LRU, plus the concurrency test: hammer
// the server from GOMAXPROCS goroutines with overlapping fault sets under
// -race, asserting the hit/miss counters stay consistent and eviction
// never serves a context prepared for a different fault set.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"

	"ftrouting"
)

func TestFaultKey(t *testing.T) {
	cases := []struct {
		in   []ftrouting.EdgeID
		want string
	}{
		{nil, ""},
		{[]ftrouting.EdgeID{5}, "5"},
		{[]ftrouting.EdgeID{1, 3, 12}, "1,3,12"},
	}
	for _, c := range cases {
		if got := faultKey(c.in); got != c.want {
			t.Fatalf("faultKey(%v) = %q, want %q", c.in, got, c.want)
		}
	}
	// Distinct canonical sets must map to distinct keys, including ones a
	// naive concatenation would alias (1,23 vs 12,3).
	if faultKey([]ftrouting.EdgeID{1, 23}) == faultKey([]ftrouting.EdgeID{12, 3}) {
		t.Fatal("key aliases distinct fault sets")
	}
}

// prepCounter is a preparer that records which fault sets it built.
type prepCounter struct {
	mu    sync.Mutex
	calls []string
}

func (p *prepCounter) prepare(canon []ftrouting.EdgeID) func() (any, error) {
	return func() (any, error) {
		p.mu.Lock()
		defer p.mu.Unlock()
		key := faultKey(canon)
		p.calls = append(p.calls, key)
		return "ctx:" + key, nil
	}
}

func TestContextCacheLRU(t *testing.T) {
	c := newContextCache(2)
	p := &prepCounter{}
	get := func(ids ...ftrouting.EdgeID) string {
		t.Helper()
		v, _, err := c.get(faultKey(ids), p.prepare(ids))
		if err != nil {
			t.Fatal(err)
		}
		return v.(string)
	}

	// Fill: A, B. Hit A (making B least recent), insert C: B evicts.
	if got := get(1); got != "ctx:1" {
		t.Fatalf("got %q", got)
	}
	get(2)
	get(1) // hit, refreshes A
	get(3) // evicts B
	get(1) // still cached
	get(2) // re-prepared
	st := c.stats()
	if st.Hits != 2 || st.Misses != 4 || st.Evictions != 2 || st.Size != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if want := []string{"1", "2", "3", "2"}; !reflect.DeepEqual(p.calls, want) {
		t.Fatalf("prepare calls %v, want %v", p.calls, want)
	}
}

func TestContextCacheDisabled(t *testing.T) {
	c := newContextCache(-1)
	p := &prepCounter{}
	for i := 0; i < 3; i++ {
		if _, _, err := c.get("7", p.prepare([]ftrouting.EdgeID{7})); err != nil {
			t.Fatal(err)
		}
	}
	st := c.stats()
	if st.Hits != 0 || st.Misses != 3 || st.Size != 0 {
		t.Fatalf("disabled cache stats = %+v", st)
	}
	if len(p.calls) != 3 {
		t.Fatalf("disabled cache prepared %d times, want 3", len(p.calls))
	}
}

func TestContextCacheErrorNotCached(t *testing.T) {
	c := newContextCache(4)
	fail := errors.New("invalid fault set")
	prepared := 0
	prep := func() (any, error) {
		prepared++
		return nil, fail
	}
	for i := 0; i < 2; i++ {
		if _, _, err := c.get("1", prep); !errors.Is(err, fail) {
			t.Fatalf("got %v", err)
		}
	}
	// A failed preparation holds no slot and re-runs on retry.
	if prepared != 2 {
		t.Fatalf("prepared %d times, want 2", prepared)
	}
	if st := c.stats(); st.Size != 0 {
		t.Fatalf("failed entries retained: %+v", st)
	}
}

// TestContextCacheFailedSharedPrepIsMiss pins the counter contract on
// the failed-prep path: a goroutine that joins another caller's
// in-flight preparation is counted a hit at lookup, but if that shared
// preparation fails neither caller received a context — both must
// report (and count) a miss, and the dead entry must hold no slot.
// Before the fix the joiner returned hit=true with its error, so the
// obs layer recorded a cache hit for a request that errored.
func TestContextCacheFailedSharedPrepIsMiss(t *testing.T) {
	c := newContextCache(4)
	fail := errors.New("invalid fault set")
	started := make(chan struct{})
	release := make(chan struct{})
	prep := func() (any, error) {
		close(started)
		<-release
		return nil, fail
	}

	type result struct {
		hit bool
		err error
	}
	results := make(chan result, 2)
	go func() {
		_, hit, err := c.get("9", prep)
		results <- result{hit, err}
	}()
	<-started // the first lookup owns the in-flight preparation

	go func() {
		// Joins the first caller's preparation; its own prep never runs.
		_, hit, err := c.get("9", prep)
		results <- result{hit, err}
	}()
	// The joiner counts a hit at lookup before blocking on the shared
	// once; wait for that counter so the release cannot race past it.
	for c.stats().Hits != 1 {
		runtime.Gosched()
	}
	close(release)

	for i := 0; i < 2; i++ {
		r := <-results
		if !errors.Is(r.err, fail) {
			t.Fatalf("lookup %d error = %v, want prep failure", i, r.err)
		}
		if r.hit {
			t.Fatal("errored lookup reported hit=true")
		}
	}
	st := c.stats()
	if st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("stats after failed shared prep = %+v, want 0 hits / 2 misses", st)
	}
	if st.Size != 0 || st.Evictions != 0 {
		t.Fatalf("failed entry held a slot: %+v", st)
	}
}

// TestContextCacheConcurrentSharedPrepare checks concurrent lookups of
// one fresh key share a single preparation.
func TestContextCacheConcurrentSharedPrepare(t *testing.T) {
	c := newContextCache(4)
	p := &prepCounter{}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := c.get("42", p.prepare([]ftrouting.EdgeID{42})); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if len(p.calls) != 1 {
		t.Fatalf("%d preparations for one key, want 1", len(p.calls))
	}
	st := c.stats()
	if st.Hits+st.Misses != 16 {
		t.Fatalf("hits %d + misses %d != 16 lookups", st.Hits, st.Misses)
	}
}

// TestServeCacheRace hammers one server from GOMAXPROCS goroutines with
// overlapping fault sets, a cache deliberately smaller than the working
// set (constant eviction churn), and verifies under -race that every
// response matches the precomputed truth for its fault set — eviction
// never serves a context prepared for different faults — and that the
// hit/miss counters are consistent with the request count.
func TestServeCacheRace(t *testing.T) {
	g := ftrouting.RandomConnected(40, 70, 3)
	labels, err := ftrouting.BuildConnectivityLabels(g, ftrouting.ConnOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// 8 overlapping fault sets, capacity 3: most lookups churn.
	faultSets := make([][]ftrouting.EdgeID, 8)
	for i := range faultSets {
		faultSets[i] = ftrouting.RandomFaults(g, 3, uint64(100+i))
	}
	pairs := servePairs(g.N())
	want := make([][]bool, len(faultSets))
	for i, faults := range faultSets {
		want[i], err = labels.ConnectedBatch(
			ftrouting.QueryBatch{Pairs: toPairs(pairs), Faults: faults},
			ftrouting.BatchOptions{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
	}

	s, err := New(labels, Options{ContextCacheSize: 3, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	workers := runtime.GOMAXPROCS(0)
	const perWorker = 40
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	client := ts.Client()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				fi := (w*perWorker + i*3 + w) % len(faultSets)
				raw := fmt.Sprintf(`{"pairs":%s,"faults":%s}`,
					jsonPairs(pairs), jsonFaults(faultSets[fi]))
				resp, err := client.Post(ts.URL+"/v1/connected", "application/json", strings.NewReader(raw))
				if err != nil {
					errs <- err
					return
				}
				var body ConnectedResponse
				err = decodeBody(resp, &body)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(body.Results, want[fi]) {
					errs <- fmt.Errorf("worker %d req %d: fault set %d answered %v, want %v",
						w, i, fi, body.Results, want[fi])
					return
				}
			}
			errs <- nil
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	stats := s.Stats()
	total := uint64(workers * perWorker)
	if got := stats.Endpoints["connected"].Requests; got != total {
		t.Fatalf("request counter %d, want %d", got, total)
	}
	if stats.Endpoints["connected"].Errors != 0 {
		t.Fatalf("error counter %d, want 0", stats.Endpoints["connected"].Errors)
	}
	cs := stats.Cache
	// Every non-empty request performs exactly one cache lookup.
	if cs.Hits+cs.Misses != total {
		t.Fatalf("hits %d + misses %d != %d requests", cs.Hits, cs.Misses, total)
	}
	if cs.Size > 3 {
		t.Fatalf("cache size %d exceeds capacity 3", cs.Size)
	}
	if cs.Misses < uint64(len(faultSets)) {
		t.Fatalf("misses %d below distinct fault sets %d", cs.Misses, len(faultSets))
	}
	if cs.Evictions != cs.Misses-uint64(cs.Size) {
		t.Fatalf("evictions %d, want misses-size = %d", cs.Evictions, cs.Misses-uint64(cs.Size))
	}
	if stats.PairsServed != total*uint64(len(pairs)) {
		t.Fatalf("pairs served %d, want %d", stats.PairsServed, total*uint64(len(pairs)))
	}
}

// jsonPairs/jsonFaults render request fragments without importing json in
// the hot hammer loop.
func jsonPairs(pairs [][2]int32) string {
	var b strings.Builder
	b.WriteByte('[')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "[%d,%d]", p[0], p[1])
	}
	b.WriteByte(']')
	return b.String()
}

func jsonFaults(faults []ftrouting.EdgeID) string {
	var b strings.Builder
	b.WriteByte('[')
	for i, id := range faults {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", id)
	}
	b.WriteByte(']')
	return b.String()
}

// decodeBody reads and decodes a 200 response.
func decodeBody(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
