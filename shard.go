package ftrouting

// Sharded scheme persistence: a scheme file split per connected
// component. The paper builds and queries every labeling strictly per
// component (Section 3 tags each label with its component id), so a
// persisted scheme is losslessly splittable: a *manifest* file records
// the scheme parameters, the global topology and the global
// vertex -> (component, shard) directory, and each *shard* file carries
// the per-component payloads of one shard. A serving replica needs only
// the manifest plus the shards its queries touch resident in memory —
// the architectural step from one-process serving to distributable
// shards (see `ftroute shard` / `ftroute serve -in shards/`).
//
// Monolithic and sharded files share the per-component encode/decode
// path (encodeConnComponent / decodeConnComponent, codec.EncodeCluster /
// codec.DecodeCluster): a monolithic scheme file is the degenerate
// one-shard split of the same sections. A shard loads into a *partial*
// scheme — the same ConnLabels / DistLabels / Router types with only its
// own components' structures materialized and every id (vertex, edge,
// component, cluster) kept global — so in-shard queries run the exact
// code paths of the whole scheme and answer bit-identically.
//
// Integrity is layered like PR 2's scheme files: every file is
// CRC32-C-trailed, structural nonsense is ErrCorrupt, and in addition a
// scheme *digest* (CRC32-C over kind, parameters and topology) binds
// shard files to their manifest, while the manifest records every shard
// file's checksum — a swapped-in shard file from a different build fails
// the digest or checksum cross-check even though its own trailer
// verifies.

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ftrouting/internal/blob"
	"ftrouting/internal/codec"
	"ftrouting/internal/core"
	"ftrouting/internal/distlabel"
	"ftrouting/internal/graph"
	"ftrouting/internal/parallel"
	"ftrouting/internal/route"
	"ftrouting/internal/sketch"
	"ftrouting/internal/treecover"
)

// ManifestFileName is the file name SaveSharded* writes the manifest
// under (shards sit next to it; LoadManifest resolves them relative to
// the manifest's directory).
const ManifestFileName = "manifest.ftm"

// maxShardName bounds a shard file name on the wire.
const maxShardName = 255

// ShardOptions configures SaveShardedConn/SaveShardedDist/SaveShardedRouter.
type ShardOptions struct {
	// Shards is the target shard count. 0 (or a value of at least the
	// component count) yields one shard per component; smaller values
	// group components into shards balanced by vertex count.
	Shards int
}

// ShardInfo describes one shard of a manifest.
type ShardInfo struct {
	// Name is the shard's file name, relative to the manifest.
	Name string
	// Checksum is the CRC32-C trailer of the shard file; LoadShard
	// cross-checks the file it reads against it.
	Checksum uint32
	// Bytes is the shard file size (the serving tier's residency cost).
	Bytes int64
	// Components lists the component ids the shard holds.
	Components []int32
	// Vertices and Edges total the shard's components.
	Vertices, Edges int
}

// Manifest is a loaded shard manifest: the scheme's parameters, the
// global graph, the vertex -> (component, shard) directory and the shard
// table. It plans batches (PlanBatch) and loads shards (LoadShard); it
// holds no label structures itself.
type Manifest struct {
	kind   codec.Kind
	g      *Graph
	comp   []int32 // vertex -> component
	ncomp  int
	shard  []int32 // component -> shard
	shards []ShardInfo
	digest uint32
	store  blob.Store

	// Scheme parameters (union over kinds; see persist.go's monolithic
	// prefixes, which use the identical encoding).
	connScheme ConnSchemeKind
	maxFaults  int
	f, k       int
	seed       uint64
	params     sketch.Params
	balanced   bool
	// clusterCounts[i] is the global cluster count of scale i
	// (dist/router kinds): shards address clusters by global index, so
	// partial hierarchies need the full row widths.
	clusterCounts []int

	compVerts []int // component -> vertex count
	compEdges []int // component -> edge count
}

// Shard is one loaded shard: a partial scheme answering queries for the
// manifest components it holds, bit-identically to the whole scheme.
type Shard struct {
	m      *Manifest
	id     int
	scheme any // *ConnLabels, *DistLabels or *Router (partial)
}

// ID returns the shard's index in its manifest.
func (s *Shard) ID() int { return s.id }

// Scheme returns the partial scheme: a *ConnLabels, *DistLabels or
// *Router whose in-shard queries are bit-identical to the whole scheme's.
func (s *Shard) Scheme() any { return s.scheme }

// Components returns the component ids the shard holds.
func (s *Shard) Components() []int32 {
	return append([]int32(nil), s.m.shards[s.id].Components...)
}

// Kind returns the scheme kind: "conn", "dist" or "router".
func (m *Manifest) Kind() string {
	switch m.kind {
	case codec.KindConnLabels:
		return "conn"
	case codec.KindDistLabels:
		return "dist"
	default:
		return "router"
	}
}

// Graph returns the global graph.
func (m *Manifest) Graph() *Graph { return m.g }

// NumComponents returns the component count of the graph.
func (m *Manifest) NumComponents() int { return m.ncomp }

// NumShards returns the shard count.
func (m *Manifest) NumShards() int { return len(m.shards) }

// Shards returns a copy of the shard table.
func (m *Manifest) Shards() []ShardInfo {
	out := make([]ShardInfo, len(m.shards))
	copy(out, m.shards)
	for i := range out {
		out[i].Components = append([]int32(nil), m.shards[i].Components...)
	}
	return out
}

// ShardBytes returns the recorded file size of one shard (the serving
// tier's residency cost unit).
func (m *Manifest) ShardBytes(id int) int64 { return m.shards[id].Bytes }

// ComponentOf returns the component id of a vertex.
func (m *Manifest) ComponentOf(v int32) int { return int(m.comp[v]) }

// ShardOf returns the shard id holding a vertex's component.
func (m *Manifest) ShardOf(v int32) int { return int(m.shard[m.comp[v]]) }

// FaultBound mirrors the loaded schemes' FaultBound: the f labels were
// sized for, or -1 for the f-independent sketch-based connectivity
// labels.
func (m *Manifest) FaultBound() int {
	switch m.kind {
	case codec.KindConnLabels:
		if m.connScheme == CutBased {
			return m.maxFaults
		}
		return -1
	default:
		return m.f
	}
}

// checkBound is the bound PlanBatch enforces on distinct faults — the
// same value the monolithic PrepareFaults paths pass to checkFaults.
func (m *Manifest) checkBound() int { return m.FaultBound() }

// rhoTop returns the top-scale radius 2^K of the tree-cover hierarchy
// (dist/router kinds). At the top scale every home cluster spans its
// whole component, so an edge appears in at least one cluster instance
// iff its weight is at most rhoTop — the fact planner fault counting
// relies on (see distinctFaultCount).
func (m *Manifest) rhoTop() int64 {
	return int64(1) << uint(len(m.clusterCounts)-1)
}

// assignShards groups components into at most want shards, balancing by
// vertex count: components in decreasing size order go to the currently
// lightest shard (ties to the lowest id). Deterministic, and with
// want >= ncomp (or want == 0) the assignment is the identity — one
// shard per component.
func assignShards(compVerts []int, want int) (shardOf []int32, nshards int) {
	ncomp := len(compVerts)
	if want <= 0 || want > ncomp {
		want = ncomp
	}
	order := make([]int, ncomp)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if compVerts[order[a]] != compVerts[order[b]] {
			return compVerts[order[a]] > compVerts[order[b]]
		}
		return order[a] < order[b]
	})
	load := make([]int, want)
	shardOf = make([]int32, ncomp)
	for _, ci := range order {
		best := 0
		for s := 1; s < want; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		shardOf[ci] = int32(best)
		load[best] += compVerts[ci]
	}
	return shardOf, want
}

// schemeDigest computes the CRC32-C binding shards to their manifest:
// the digest of the scheme kind, its parameters and the global graph,
// encoded exactly as the manifest encodes them.
func schemeDigest(kind codec.Kind, writeParams func(*codec.Writer), g *Graph) (uint32, error) {
	w := codec.NewWriter(io.Discard)
	w.U16(uint16(kind))
	writeParams(w)
	codec.EncodeGraph(w, g)
	if err := w.Err(); err != nil {
		return 0, err
	}
	return w.Checksum(), nil
}

// connParamsWriter encodes the connectivity parameter prefix — the one
// encoding shared by monolithic files, manifests and the scheme digest.
func connParamsWriter(scheme ConnSchemeKind, maxFaults int, seed uint64) func(*codec.Writer) {
	return func(w *codec.Writer) {
		w.U16(uint16(scheme))
		w.I32(int32(maxFaults))
		w.U64(seed)
	}
}

// hierParamsWriter encodes the dist/router parameter prefix (balanced is
// written for routers only).
func hierParamsWriter(kind codec.Kind, f, k int, seed uint64, params sketch.Params, balanced bool) func(*codec.Writer) {
	return func(w *codec.Writer) {
		w.I32(int32(f))
		w.I32(int32(k))
		w.U64(seed)
		w.I32(int32(params.Units))
		w.I32(int32(params.Levels))
		if kind == codec.KindRouter {
			w.Bool(balanced)
		}
	}
}

// Digest returns the scheme digest binding the manifest, its shards and
// any serving tier over them: the CRC32-C of the scheme kind, parameters
// and global topology. Every artifact of one build — the manifest, a
// monolithic file of the same scheme (SchemeDigest), every replica's
// /v1/healthz — reports the same digest, so a fan-out tier can reject an
// upstream serving a foreign or incompatible build before taking traffic.
func (m *Manifest) Digest() uint32 { return m.digest }

// SchemeDigest computes the digest of a loaded scheme — the same value
// the manifest of a sharded split of that scheme records (Digest), since
// both hash the identical kind/parameter/topology encoding. Serving
// tiers report it from /v1/healthz whether they hold the whole scheme or
// a manifest, which is what lets a proxy front monolithic daemons,
// shard-affine replicas and other proxies interchangeably.
func SchemeDigest(scheme any) (uint32, error) {
	switch v := scheme.(type) {
	case *ConnLabels:
		return schemeDigest(codec.KindConnLabels,
			connParamsWriter(v.opts.Scheme, v.opts.MaxFaults, v.opts.Seed), v.g)
	case *DistLabels:
		s := v.inner
		o := s.Options()
		return schemeDigest(codec.KindDistLabels,
			hierParamsWriter(codec.KindDistLabels, s.F(), s.K(), o.Seed, o.Params, false), s.Graph())
	case *Router:
		r := v.inner
		o := r.Options()
		return schemeDigest(codec.KindRouter,
			hierParamsWriter(codec.KindRouter, r.F(), r.K(), o.Seed, o.Params, o.Balanced), r.Graph())
	}
	return 0, fmt.Errorf("ftrouting: unsupported scheme type %T", scheme)
}

// componentStats tallies per-component vertex and edge counts from a
// directory.
func componentStats(g *Graph, comp []int32, ncomp int) (verts, edges []int) {
	verts = make([]int, ncomp)
	edges = make([]int, ncomp)
	for _, ci := range comp {
		verts[ci]++
	}
	for _, e := range g.Edges() {
		edges[comp[e.U]]++
	}
	return verts, edges
}

// manifestSkeleton assembles the in-memory manifest shared by every
// SaveSharded* entry point (the shard table is filled as shard files are
// written).
func manifestSkeleton(kind codec.Kind, g *Graph, comp []int32, ncomp int, opts ShardOptions) *Manifest {
	m := &Manifest{kind: kind, g: g, comp: comp, ncomp: ncomp}
	m.compVerts, m.compEdges = componentStats(g, comp, ncomp)
	var nshards int
	m.shard, nshards = assignShards(m.compVerts, opts.Shards)
	m.shards = make([]ShardInfo, nshards)
	for s := range m.shards {
		m.shards[s].Name = fmt.Sprintf("shard-%04d.fts", s)
	}
	for ci, s := range m.shard {
		info := &m.shards[s]
		info.Components = append(info.Components, int32(ci))
		info.Vertices += m.compVerts[ci]
		info.Edges += m.compEdges[ci]
	}
	return m
}

// writeShardFile writes one shard file and records its checksum and size
// in the shard table. payload writes the kind-specific sections.
func (m *Manifest) writeShardFile(dir string, id int, payload func(*codec.Writer)) error {
	info := &m.shards[id]
	path := filepath.Join(dir, info.Name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := codec.NewWriter(f)
	codec.WriteHeader(w, codec.KindShard)
	w.U16(uint16(m.kind))
	w.U32(m.digest)
	w.I32(int32(id))
	w.Count(len(info.Components))
	for _, ci := range info.Components {
		w.I32(ci)
	}
	payload(w)
	if err := w.Finish(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	info.Checksum = w.Checksum()
	info.Bytes = st.Size()
	return nil
}

// writeManifestFile writes the manifest after every shard is on disk.
func (m *Manifest) writeManifestFile(dir string, writeParams func(*codec.Writer)) error {
	f, err := os.Create(filepath.Join(dir, ManifestFileName))
	if err != nil {
		return err
	}
	w := codec.NewWriter(f)
	codec.WriteHeader(w, codec.KindManifest)
	w.U16(uint16(m.kind))
	writeParams(w)
	codec.EncodeGraph(w, m.g)
	if m.kind != codec.KindConnLabels {
		w.Count(len(m.clusterCounts))
		for _, c := range m.clusterCounts {
			w.Count(c)
		}
	}
	w.Count(m.ncomp)
	for _, ci := range m.comp {
		w.I32(ci)
	}
	for _, s := range m.shard {
		w.I32(s)
	}
	w.Count(len(m.shards))
	for _, info := range m.shards {
		w.String(info.Name)
		w.U32(info.Checksum)
		w.I64(info.Bytes)
	}
	if err := w.Finish(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// SaveShardedConn splits a connectivity labeling into a manifest plus
// per-component shard files under dir, which must exist. The returned
// manifest is ready for PlanBatch/LoadShard.
func SaveShardedConn(dir string, c *ConnLabels, opts ShardOptions) (*Manifest, error) {
	m := manifestSkeleton(codec.KindConnLabels, c.g, c.comp, len(c.subs), opts)
	m.connScheme, m.maxFaults, m.seed = c.opts.Scheme, c.opts.MaxFaults, c.opts.Seed
	writeParams := connParamsWriter(c.opts.Scheme, c.opts.MaxFaults, c.opts.Seed)
	var err error
	if m.digest, err = schemeDigest(m.kind, writeParams, c.g); err != nil {
		return nil, err
	}
	for id := range m.shards {
		info := m.shards[id]
		err := m.writeShardFile(dir, id, func(w *codec.Writer) {
			for _, ci := range info.Components {
				encodeConnComponent(w, c.subs[ci], c.componentTree(int(ci)))
			}
		})
		if err != nil {
			return nil, err
		}
	}
	if err := m.writeManifestFile(dir, writeParams); err != nil {
		return nil, err
	}
	m.store = blob.NewDir(dir)
	return m, nil
}

// hierarchyShardPayload writes the dist/router shard payload: per scale,
// the home indices of the shard's vertices (ascending global id) and the
// shard's clusters tagged with their global indices.
func hierarchyShardPayload(w *codec.Writer, m *Manifest, id int, hier *treecover.Hierarchy) {
	verts := shardVertices(m, id)
	w.Count(len(hier.Scales))
	for _, cover := range hier.Scales {
		w.Count(len(verts))
		for _, v := range verts {
			w.I32(cover.Home[v])
		}
		var own []int32
		for j, cl := range cover.Clusters {
			if m.shard[m.comp[cl.Sub.ToGlobal[0]]] == int32(id) {
				own = append(own, int32(j))
			}
		}
		w.Count(len(own))
		for _, j := range own {
			w.I32(j)
			codec.EncodeCluster(w, cover.Clusters[j])
		}
	}
}

// shardVertices lists a shard's global vertex ids in ascending order.
func shardVertices(m *Manifest, id int) []int32 {
	verts := make([]int32, 0, m.shards[id].Vertices)
	for v, ci := range m.comp {
		if m.shard[ci] == int32(id) {
			verts = append(verts, int32(v))
		}
	}
	return verts
}

// SaveShardedDist splits a distance labeling into a manifest plus shard
// files under dir. Each shard carries its components' tree-cover
// clusters tagged with their global (scale, cluster) indices, so a
// loaded shard rebuilds its instances with the original seeds.
func SaveShardedDist(dir string, d *DistLabels, opts ShardOptions) (*Manifest, error) {
	s := d.inner
	comp, ncomp := graph.Components(s.Graph(), nil)
	m := manifestSkeleton(codec.KindDistLabels, s.Graph(), comp, ncomp, opts)
	sopts := s.Options()
	m.f, m.k, m.seed, m.params = s.F(), s.K(), sopts.Seed, sopts.Params
	hier := s.Hierarchy()
	for _, cover := range hier.Scales {
		m.clusterCounts = append(m.clusterCounts, len(cover.Clusters))
	}
	writeParams := hierParamsWriter(m.kind, m.f, m.k, m.seed, m.params, false)
	var err error
	if m.digest, err = schemeDigest(m.kind, writeParams, m.g); err != nil {
		return nil, err
	}
	for id := range m.shards {
		err := m.writeShardFile(dir, id, func(w *codec.Writer) {
			hierarchyShardPayload(w, m, id, hier)
		})
		if err != nil {
			return nil, err
		}
	}
	if err := m.writeManifestFile(dir, writeParams); err != nil {
		return nil, err
	}
	m.store = blob.NewDir(dir)
	return m, nil
}

// SaveShardedRouter splits a preprocessed router into a manifest plus
// shard files under dir, the same way as SaveShardedDist.
func SaveShardedRouter(dir string, r *Router, opts ShardOptions) (*Manifest, error) {
	inner := r.inner
	comp, ncomp := graph.Components(inner.Graph(), nil)
	m := manifestSkeleton(codec.KindRouter, inner.Graph(), comp, ncomp, opts)
	ropts := inner.Options()
	m.f, m.k, m.seed, m.params, m.balanced = inner.F(), inner.K(), ropts.Seed, ropts.Params, ropts.Balanced
	hier := inner.Hierarchy()
	for _, cover := range hier.Scales {
		m.clusterCounts = append(m.clusterCounts, len(cover.Clusters))
	}
	writeParams := hierParamsWriter(m.kind, m.f, m.k, m.seed, m.params, m.balanced)
	var err error
	if m.digest, err = schemeDigest(m.kind, writeParams, m.g); err != nil {
		return nil, err
	}
	for id := range m.shards {
		err := m.writeShardFile(dir, id, func(w *codec.Writer) {
			hierarchyShardPayload(w, m, id, hier)
		})
		if err != nil {
			return nil, err
		}
	}
	if err := m.writeManifestFile(dir, writeParams); err != nil {
		return nil, err
	}
	m.store = blob.NewDir(dir)
	return m, nil
}

// LoadManifest reads and validates a manifest file; shard files resolve
// relative to its directory.
func LoadManifest(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := ReadManifest(f)
	if err != nil {
		return nil, err
	}
	m.store = blob.NewDir(filepath.Dir(path))
	return m, nil
}

// Store returns the blob store LoadShard resolves shard names against
// (nil for a manifest decoded with bare ReadManifest).
func (m *Manifest) Store() blob.Store { return m.store }

// SetStore redirects LoadShard to a different blob store — the hook
// that lets a replica holding only the manifest fetch its shards from a
// remote backend. Every shard fetched through any store is still
// verified against the manifest's recorded checksum and scheme digest
// before it is returned, so the store is never trusted.
func (m *Manifest) SetStore(s blob.Store) { m.store = s }

// ReadManifest decodes a manifest from a reader (LoadManifest plus a
// directory for shard resolution is the usual entry point). Decoding is
// strict: beyond the file checksum, the vertex -> component directory
// must match a recomputation from the decoded graph, so a manifest can
// never misroute a query to the wrong shard.
func ReadManifest(r io.Reader) (*Manifest, error) {
	cr := codec.NewReader(r)
	if err := codec.ReadHeader(cr, codec.KindManifest); err != nil {
		return nil, err
	}
	kind := codec.Kind(cr.U16())
	if err := cr.Err(); err != nil {
		return nil, err
	}
	m := &Manifest{kind: kind}
	var writeParams func(*codec.Writer)
	switch kind {
	case codec.KindConnLabels:
		scheme, maxFaults, seed, err := readConnParams(cr)
		if err != nil {
			return nil, err
		}
		m.connScheme, m.maxFaults, m.seed = scheme, maxFaults, seed
		writeParams = connParamsWriter(scheme, maxFaults, seed)
	case codec.KindDistLabels, codec.KindRouter:
		f, k, seed, params, err := readSchemeParams(cr)
		if err != nil {
			return nil, err
		}
		balanced := false
		if kind == codec.KindRouter {
			balanced = cr.Bool()
			if err := cr.Err(); err != nil {
				return nil, err
			}
		}
		m.f, m.k, m.seed, m.params, m.balanced = f, k, seed, params, balanced
		writeParams = hierParamsWriter(kind, f, k, seed, params, balanced)
	default:
		return nil, fmt.Errorf("%w: manifest holds unknown scheme kind %d", codec.ErrCorrupt, kind)
	}
	g, err := codec.DecodeGraph(cr)
	if err != nil {
		return nil, err
	}
	m.g = g
	if kind != codec.KindConnLabels {
		numScales := cr.Count(maxPersistedParam)
		if err := cr.Err(); err != nil {
			return nil, err
		}
		if numScales < 1 || numScales > 64 {
			cr.Corrupt("manifest scale count %d out of range", numScales)
			return nil, cr.Err()
		}
		for i := 0; i < numScales; i++ {
			m.clusterCounts = append(m.clusterCounts, cr.Count(codec.MaxElems))
		}
		if err := cr.Err(); err != nil {
			return nil, err
		}
	}
	ncomp := cr.Count(g.N())
	if err := cr.Err(); err != nil {
		return nil, err
	}
	m.ncomp = ncomp
	m.comp = make([]int32, g.N())
	for v := range m.comp {
		m.comp[v] = cr.I32()
	}
	m.shard = make([]int32, ncomp)
	for ci := range m.shard {
		m.shard[ci] = cr.I32()
	}
	nshards := cr.Count(ncomp)
	if err := cr.Err(); err != nil {
		return nil, err
	}
	if ncomp > 0 && nshards < 1 {
		cr.Corrupt("manifest names %d components but no shards", ncomp)
		return nil, cr.Err()
	}
	m.shards = make([]ShardInfo, nshards)
	for i := range m.shards {
		info := &m.shards[i]
		info.Name = cr.String(maxShardName)
		info.Checksum = cr.U32()
		info.Bytes = cr.I64()
		if err := cr.Err(); err != nil {
			return nil, err
		}
		if err := validShardName(info.Name); err != nil {
			cr.Corrupt("shard %d: %v", i, err)
			return nil, cr.Err()
		}
		if info.Bytes < int64(codec.HeaderLen) {
			cr.Corrupt("shard %d: impossible size %d", i, info.Bytes)
			return nil, cr.Err()
		}
	}
	if err := cr.Finish(); err != nil {
		return nil, err
	}
	// The directory is load-bearing (it routes every query), so it must
	// agree exactly with a recomputation from the decoded graph, and every
	// shard assignment must address a real shard.
	wantComp, wantCount := graph.Components(g, nil)
	if wantCount != ncomp {
		return nil, fmt.Errorf("%w: manifest names %d components, graph has %d", codec.ErrCorrupt, ncomp, wantCount)
	}
	for v := range m.comp {
		if m.comp[v] != wantComp[v] {
			return nil, fmt.Errorf("%w: vertex %d in component %d, directory says %d", codec.ErrCorrupt, v, wantComp[v], m.comp[v])
		}
	}
	seen := make([]bool, nshards)
	for ci, s := range m.shard {
		if s < 0 || int(s) >= nshards {
			return nil, fmt.Errorf("%w: component %d assigned to shard %d of %d", codec.ErrCorrupt, ci, s, nshards)
		}
		seen[s] = true
	}
	for s, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("%w: shard %d holds no component", codec.ErrCorrupt, s)
		}
	}
	m.compVerts, m.compEdges = componentStats(g, m.comp, ncomp)
	for ci, s := range m.shard {
		info := &m.shards[s]
		info.Components = append(info.Components, int32(ci))
		info.Vertices += m.compVerts[ci]
		info.Edges += m.compEdges[ci]
	}
	if m.digest, err = schemeDigest(kind, writeParams, g); err != nil {
		return nil, err
	}
	return m, nil
}

// validShardName rejects wire shard names that could escape the
// manifest's directory.
func validShardName(name string) error {
	if name == "" || name == "." || name == ".." ||
		strings.ContainsAny(name, "/\\") || strings.ContainsRune(name, 0) {
		return fmt.Errorf("invalid shard file name %q", name)
	}
	return nil
}

// LoadShard fetches, verifies and decodes one shard blob from the
// manifest's store (LoadShardFrom with Store()) into a partial scheme.
func (m *Manifest) LoadShard(id int) (*Shard, error) {
	return m.LoadShardFrom(m.store, id)
}

// LoadShardFrom fetches shard id from store and decodes it into a
// partial scheme. Beyond ReadShard's checks, the blob's size and
// checksum must equal the ones the manifest recorded, so a stale or
// foreign shard blob — even a self-consistent one — is rejected before
// any of it is handed out, no matter which backend produced it.
func (m *Manifest) LoadShardFrom(store blob.Store, id int) (*Shard, error) {
	if id < 0 || id >= len(m.shards) {
		return nil, fmt.Errorf("ftrouting: shard %d out of range [0,%d)", id, len(m.shards))
	}
	if store == nil {
		return nil, fmt.Errorf("ftrouting: manifest has no shard store (see Manifest.SetStore)")
	}
	info := &m.shards[id]
	// Hand the store the manifest-recorded size: a transport whose
	// response reveals no length (chunked 200 fallback) can then tell a
	// cleanly-truncated transfer from a complete one and retry it,
	// instead of the short blob failing the size pre-check below as
	// corruption.
	r, err := blob.OpenExpect(store, info.Name, info.Bytes)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	if r.Size() != info.Bytes {
		return nil, fmt.Errorf("%w: shard %d blob is %d bytes, manifest recorded %d", codec.ErrCorrupt, id, r.Size(), info.Bytes)
	}
	sh, sum, err := m.readShard(bufio.NewReader(io.NewSectionReader(r, 0, r.Size())))
	if err != nil {
		return nil, err
	}
	if sh.id != id {
		return nil, fmt.Errorf("%w: blob %s holds shard %d, manifest lists %d", codec.ErrCorrupt, info.Name, sh.id, id)
	}
	if sum != info.Checksum {
		return nil, fmt.Errorf("%w: shard %d blob checksum %08x, manifest recorded %08x", codec.ErrChecksum, id, sum, info.Checksum)
	}
	return sh, nil
}

// ReadShard decodes a shard from a reader, verifying its digest against
// the manifest and fully validating its structure. LoadShard adds the
// manifest-recorded checksum cross-check.
func (m *Manifest) ReadShard(r io.Reader) (*Shard, error) {
	sh, _, err := m.readShard(r)
	return sh, err
}

func (m *Manifest) readShard(r io.Reader) (*Shard, uint32, error) {
	cr := codec.NewReader(r)
	if err := codec.ReadHeader(cr, codec.KindShard); err != nil {
		return nil, 0, err
	}
	kind := codec.Kind(cr.U16())
	digest := cr.U32()
	id := int(cr.I32())
	if err := cr.Err(); err != nil {
		return nil, 0, err
	}
	if kind != m.kind {
		return nil, 0, fmt.Errorf("%w: shard holds %s sections, manifest is a %s scheme", codec.ErrKind, kind, m.kind)
	}
	if digest != m.digest {
		return nil, 0, fmt.Errorf("%w: shard digest %08x does not match manifest %08x", codec.ErrCorrupt, digest, m.digest)
	}
	if id < 0 || id >= len(m.shards) {
		cr.Corrupt("shard id %d out of range [0,%d)", id, len(m.shards))
		return nil, 0, cr.Err()
	}
	want := m.shards[id].Components
	ncomps := cr.Count(m.ncomp)
	if err := cr.Err(); err != nil {
		return nil, 0, err
	}
	if ncomps != len(want) {
		cr.Corrupt("shard %d lists %d components, manifest assigns %d", id, ncomps, len(want))
		return nil, 0, cr.Err()
	}
	for i := 0; i < ncomps; i++ {
		ci := cr.I32()
		if cr.Err() == nil && ci != want[i] {
			cr.Corrupt("shard %d component %d is %d, manifest assigns %d", id, i, ci, want[i])
		}
	}
	if err := cr.Err(); err != nil {
		return nil, 0, err
	}
	var scheme any
	var err error
	switch m.kind {
	case codec.KindConnLabels:
		scheme, err = m.decodeConnShard(cr, id)
	default:
		scheme, err = m.decodeHierarchyShard(cr, id)
	}
	if err != nil {
		return nil, 0, err
	}
	if err := cr.Finish(); err != nil {
		return nil, 0, err
	}
	return &Shard{m: m, id: id, scheme: scheme}, cr.Checksum(), nil
}

// decodeConnShard reads per-component (subgraph, tree) sections and
// rebuilds a partial connectivity labeling: global graph, global
// directory, and only this shard's component schemes materialized.
func (m *Manifest) decodeConnShard(cr *codec.Reader, id int) (*ConnLabels, error) {
	c := &ConnLabels{
		g:        m.g,
		opts:     ConnOptions{Scheme: m.connScheme, MaxFaults: m.maxFaults, Seed: m.seed},
		comp:     m.comp,
		subs:     make([]*graph.Subgraph, m.ncomp),
		cuts:     make([]*core.CutScheme, m.ncomp),
		sketches: make([]*core.SketchScheme, m.ncomp),
	}
	comps := m.shards[id].Components
	trees := make([]*graph.Tree, len(comps))
	for i, ci := range comps {
		sub, tree, err := decodeConnComponent(cr, m.g, int(ci))
		if err != nil {
			return nil, err
		}
		if err := m.checkComponentSection(cr, int(ci), sub); err != nil {
			return nil, err
		}
		c.subs[ci] = sub
		trees[i] = tree
	}
	err := parallel.ForEach(0, len(comps), func(i int) error {
		return c.buildComponentScheme(int(comps[i]), trees[i])
	})
	if err != nil {
		return nil, fmt.Errorf("%w: rebuilding shard %d labeling: %v", codec.ErrCorrupt, id, err)
	}
	return c, nil
}

// checkComponentSection verifies a decoded component subgraph covers
// component ci exactly: its vertices are precisely the directory's
// members and its edge list is complete. The monolithic loader derives
// the directory from the sections; a shard must agree with the directory
// it is served under.
func (m *Manifest) checkComponentSection(cr *codec.Reader, ci int, sub *graph.Subgraph) error {
	if sub.Local.N() != m.compVerts[ci] {
		cr.Corrupt("component %d section has %d of %d vertices", ci, sub.Local.N(), m.compVerts[ci])
		return cr.Err()
	}
	for _, v := range sub.ToGlobal {
		if m.comp[v] != int32(ci) {
			cr.Corrupt("vertex %d of component %d listed in component-%d section", v, m.comp[v], ci)
			return cr.Err()
		}
	}
	if sub.Local.M() != m.compEdges[ci] {
		cr.Corrupt("component %d section has %d of %d edges", ci, sub.Local.M(), m.compEdges[ci])
		return cr.Err()
	}
	return nil
}

// decodeHierarchyShard reads the per-scale cluster sections of a
// dist/router shard and rebuilds a partial scheme on a partial
// tree-cover hierarchy: full-width cluster rows (global indices, hence
// original instance seeds) with only this shard's slots populated.
func (m *Manifest) decodeHierarchyShard(cr *codec.Reader, id int) (any, error) {
	verts := shardVertices(m, id)
	inShard := make(map[int32]bool, len(verts))
	for _, v := range verts {
		inShard[v] = true
	}
	numScales := cr.Count(len(m.clusterCounts))
	if err := cr.Err(); err != nil {
		return nil, err
	}
	if numScales != len(m.clusterCounts) {
		cr.Corrupt("shard has %d scales, manifest %d", numScales, len(m.clusterCounts))
		return nil, cr.Err()
	}
	hier := &treecover.Hierarchy{G: m.g, K: numScales - 1}
	for i := 0; i < numScales; i++ {
		cover := &treecover.Cover{
			Rho:      int64(1) << uint(i),
			K:        m.k,
			Home:     make([]int32, m.g.N()),
			Clusters: make([]*treecover.Cluster, m.clusterCounts[i]),
		}
		for v := range cover.Home {
			cover.Home[v] = -1
		}
		nhomes := cr.Count(len(verts))
		if cr.Err() == nil && nhomes != len(verts) {
			cr.Corrupt("scale %d lists %d of %d shard vertices", i, nhomes, len(verts))
		}
		if err := cr.Err(); err != nil {
			return nil, err
		}
		for _, v := range verts {
			cover.Home[v] = cr.I32()
		}
		nclusters := cr.Count(m.clusterCounts[i])
		if err := cr.Err(); err != nil {
			return nil, err
		}
		prev := int32(-1)
		for c := 0; c < nclusters; c++ {
			j := cr.I32()
			if cr.Err() == nil && (j <= prev || int(j) >= m.clusterCounts[i]) {
				cr.Corrupt("scale %d cluster index %d out of order or range (%d clusters)", i, j, m.clusterCounts[i])
			}
			if err := cr.Err(); err != nil {
				return nil, err
			}
			prev = j
			cl, err := codec.DecodeCluster(cr, m.g)
			if err != nil {
				return nil, fmt.Errorf("scale %d cluster %d: %w", i, j, err)
			}
			for _, v := range cl.Sub.ToGlobal {
				if !inShard[v] {
					cr.Corrupt("scale %d cluster %d contains vertex %d of another shard", i, j, v)
					return nil, cr.Err()
				}
			}
			cover.Clusters[j] = cl
		}
		// Every shard vertex must point at a resident home cluster that
		// contains it — the decode walk dereferences it unconditionally.
		for _, v := range verts {
			j := cover.Home[v]
			if j < 0 || int(j) >= len(cover.Clusters) || cover.Clusters[j] == nil {
				cr.Corrupt("scale %d: home cluster %d of vertex %d not in this shard", i, j, v)
				return nil, cr.Err()
			}
			if !cover.Clusters[j].Sub.Contains(v) {
				cr.Corrupt("scale %d: vertex %d not in its home cluster %d", i, v, j)
				return nil, cr.Err()
			}
		}
		hier.Scales = append(hier.Scales, cover)
	}
	if m.kind == codec.KindDistLabels {
		inner, err := distlabel.BuildWithHierarchy(m.g, m.f, m.k, distlabel.Options{Seed: m.seed, Params: m.params}, hier)
		if err != nil {
			return nil, fmt.Errorf("%w: rebuilding shard %d distance labeling: %v", codec.ErrCorrupt, id, err)
		}
		return &DistLabels{inner: inner}, nil
	}
	inner, err := route.BuildWithHierarchy(m.g, m.f, m.k, route.Options{Seed: m.seed, Params: m.params, Balanced: m.balanced}, hier)
	if err != nil {
		return nil, fmt.Errorf("%w: rebuilding shard %d router: %v", codec.ErrCorrupt, id, err)
	}
	return &Router{inner: inner}, nil
}
