package ftrouting

import (
	"testing"

	"ftrouting/internal/graph"
	"ftrouting/internal/xrand"
)

func TestConnLabelsBothSchemes(t *testing.T) {
	for _, scheme := range []ConnSchemeKind{CutBased, SketchBased} {
		g := RandomConnected(40, 60, 3)
		labels, err := BuildConnectivityLabels(g, ConnOptions{Scheme: scheme, MaxFaults: 4, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		rng := xrand.NewSplitMix64(9)
		for q := 0; q < 40; q++ {
			faults := RandomFaults(g, rng.Intn(5), uint64(q))
			s, d := int32(rng.Intn(40)), int32(rng.Intn(40))
			got, err := labels.Connected(s, d, faults)
			if err != nil {
				t.Fatal(err)
			}
			want := Distance(g, s, d, NewEdgeSet(faults...)) != Inf
			if got != want {
				t.Fatalf("scheme %d q %d: got %v want %v", scheme, q, got, want)
			}
		}
	}
}

func TestConnLabelsDisconnectedGraph(t *testing.T) {
	g := NewGraph(7)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 0, 1)
	g.MustAddEdge(3, 4, 1)
	g.MustAddEdge(4, 5, 1)
	for _, scheme := range []ConnSchemeKind{CutBased, SketchBased} {
		labels, err := BuildConnectivityLabels(g, ConnOptions{Scheme: scheme, MaxFaults: 2, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		cases := []struct {
			s, d int32
			want bool
		}{
			{0, 2, true}, {0, 3, false}, {3, 5, true}, {6, 6, true}, {6, 0, false},
		}
		for _, c := range cases {
			got, err := labels.Connected(c.s, c.d, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got != c.want {
				t.Fatalf("scheme %d: Connected(%d,%d) = %v, want %v", scheme, c.s, c.d, got, c.want)
			}
		}
		// Fault inside one component does not affect others.
		cut, _ := g.FindEdge(3, 4)
		got, err := labels.Connected(0, 2, []EdgeID{cut})
		if err != nil || !got {
			t.Fatalf("scheme %d: cross-component fault affected query: %v %v", scheme, got, err)
		}
		got, err = labels.Connected(3, 5, []EdgeID{cut})
		if err != nil || got {
			t.Fatalf("scheme %d: fault not applied: %v %v", scheme, got, err)
		}
	}
}

func TestConnLabelBitsReasonable(t *testing.T) {
	g := RandomConnected(200, 300, 5)
	cut, err := BuildConnectivityLabels(g, ConnOptions{Scheme: CutBased, MaxFaults: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sk, err := BuildConnectivityLabels(g, ConnOptions{Scheme: SketchBased, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Cut-based vertex labels are tiny (O(log n)); edge labels O(f+log n).
	if b := cut.VertexLabel(0).Bits(); b > 64 {
		t.Fatalf("cut vertex label %d bits", b)
	}
	if b := cut.EdgeLabel(0).Bits(); b > 200 {
		t.Fatalf("cut edge label %d bits", b)
	}
	// Sketch-based vertex labels are small; tree-edge labels polylog^3.
	if b := sk.VertexLabel(0).Bits(); b > 128 {
		t.Fatalf("sketch vertex label %d bits", b)
	}
	if sk.EdgeLabel(0).Bits() <= 0 {
		t.Fatal("sketch edge label bits")
	}
}

func TestQueryWithExplicitLabels(t *testing.T) {
	// The decoder sees only labels; exercise the explicit-label API.
	g := Cycle(10)
	labels, err := BuildConnectivityLabels(g, ConnOptions{MaxFaults: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	e1, _ := g.FindEdge(0, 1)
	e2, _ := g.FindEdge(5, 6)
	fl := []EdgeLabel{labels.EdgeLabel(e1), labels.EdgeLabel(e2)}
	got, err := labels.Query(labels.VertexLabel(1), labels.VertexLabel(5), fl)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("1 and 5 remain connected on the arc")
	}
	// Removing (0,1) and (5,6) leaves arcs {1..5} and {6..9,0}.
	got, err = labels.Query(labels.VertexLabel(0), labels.VertexLabel(5), fl)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("0 and 5 are separated")
	}
}

func TestDistanceLabelsFacade(t *testing.T) {
	g := WithRandomWeights(RandomConnected(30, 45, 2), 4, 3)
	d, err := BuildDistanceLabels(g, 2, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.NewSplitMix64(13)
	for q := 0; q < 25; q++ {
		faults := RandomFaults(g, rng.Intn(3), uint64(q))
		s, dst := int32(rng.Intn(30)), int32(rng.Intn(30))
		est, err := d.Estimate(s, dst, faults)
		if err != nil {
			t.Fatal(err)
		}
		truth := Distance(g, s, dst, NewEdgeSet(faults...))
		if truth == Inf {
			if est != Unreachable {
				t.Fatalf("q %d: estimate %d for disconnected pair", q, est)
			}
			continue
		}
		if est < truth || est > d.StretchBound(len(faults))*truth {
			t.Fatalf("q %d: estimate %d outside [%d, %d]", q, est, truth, d.StretchBound(len(faults))*truth)
		}
	}
	if d.VertexLabelBits(0) <= 0 || d.EdgeLabelBits(0) <= 0 {
		t.Fatal("bit accounting")
	}
}

func TestRouterFacade(t *testing.T) {
	g := RandomConnected(35, 55, 8)
	r, err := NewRouter(g, 2, 2, RouterOptions{Seed: 17, Balanced: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.NewSplitMix64(19)
	for q := 0; q < 20; q++ {
		faultIDs := RandomFaults(g, rng.Intn(3), uint64(q)*5)
		faults := NewEdgeSet(faultIDs...)
		s, dst := int32(rng.Intn(35)), int32(rng.Intn(35))
		res, err := r.Route(s, dst, faults)
		if err != nil {
			t.Fatal(err)
		}
		connected := Distance(g, s, dst, faults) != Inf
		if res.Reached != connected {
			t.Fatalf("q %d: reached %v connected %v", q, res.Reached, connected)
		}
		if connected && res.Cost > r.StretchBoundFT(len(faultIDs))*res.Opt {
			t.Fatalf("q %d: stretch bound violated", q)
		}
		fres, err := r.RouteForbidden(s, dst, faultIDs)
		if err != nil {
			t.Fatal(err)
		}
		if fres.Reached != connected {
			t.Fatalf("q %d: forbidden reached %v connected %v", q, fres.Reached, connected)
		}
		if connected && fres.Cost > r.StretchBoundForbidden(len(faultIDs))*fres.Opt {
			t.Fatalf("q %d: forbidden stretch bound violated", q)
		}
	}
	if r.MaxTableBits() <= 0 || r.TotalTableBits() <= 0 || r.LabelBits(0) <= 0 {
		t.Fatal("accounting")
	}
}

func TestFacadeErrors(t *testing.T) {
	g := Path(4)
	if _, err := BuildConnectivityLabels(g, ConnOptions{Scheme: 99}); err == nil {
		t.Fatal("bad scheme accepted")
	}
	if _, err := BuildConnectivityLabels(g, ConnOptions{MaxFaults: -1}); err == nil {
		t.Fatal("negative f accepted")
	}
	if _, err := BuildDistanceLabels(g, 1, 0, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewRouter(g, -1, 2, RouterOptions{}); err == nil {
		t.Fatal("negative f accepted")
	}
}

func TestDefaultSchemeIsSketchBased(t *testing.T) {
	g := Path(5)
	labels, err := BuildConnectivityLabels(g, ConnOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := labels.Connected(0, 4, nil)
	if err != nil || !got {
		t.Fatalf("default scheme query failed: %v %v", got, err)
	}
	_ = graph.EdgeID(0) // retain internal import for type identity checks
}
